//! Complex FFT over the negacyclic ring `R[x]/(x^n + 1)`, in Falcon's
//! half-size representation.
//!
//! A real polynomial of degree `< n` is determined by its evaluations at
//! the `n` primitive `2n`-th roots of unity; conjugate symmetry lets us
//! store only the `n/2` roots with positive imaginary part,
//! `zeta_k = exp(i pi (2k+1) / n)` for `k = 0 .. n/2 - 1`. For `n = 2` the
//! single stored value is `a_0 + i a_1` — the two coefficients appear as
//! real and imaginary part, which is what makes the ffSampling base case
//! sample plain reals.
//!
//! [`split`] and [`merge`] are Falcon's `splitfft`/`mergefft`: the FFT
//! images of the even/odd coefficient split `a(x) = a_0(x^2) + x a_1(x^2)`,
//! used by ffLDL and ffSampling to walk the tower of rings.

use core::ops::{Add, Mul, Neg, Sub};

/// A complex number over `f64` (no external dependencies).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct C64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl C64 {
    /// Builds a complex number.
    pub fn new(re: f64, im: f64) -> Self {
        C64 { re, im }
    }

    /// The real number `re`.
    pub fn real(re: f64) -> Self {
        C64 { re, im: 0.0 }
    }

    /// Complex conjugate.
    pub fn conj(self) -> Self {
        C64 {
            re: self.re,
            im: -self.im,
        }
    }

    /// Squared magnitude.
    pub fn norm_sq(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Complex division.
    #[allow(clippy::should_implement_trait)]
    pub fn div(self, other: C64) -> C64 {
        let d = other.norm_sq();
        let num = self * other.conj();
        C64 {
            re: num.re / d,
            im: num.im / d,
        }
    }

    /// Scalar multiplication.
    pub fn scale(self, s: f64) -> C64 {
        C64 {
            re: self.re * s,
            im: self.im * s,
        }
    }
}

impl Add for C64 {
    type Output = C64;
    fn add(self, o: C64) -> C64 {
        C64 {
            re: self.re + o.re,
            im: self.im + o.im,
        }
    }
}

impl Sub for C64 {
    type Output = C64;
    fn sub(self, o: C64) -> C64 {
        C64 {
            re: self.re - o.re,
            im: self.im - o.im,
        }
    }
}

impl Mul for C64 {
    type Output = C64;
    fn mul(self, o: C64) -> C64 {
        C64 {
            re: self.re * o.re - self.im * o.im,
            im: self.re * o.im + self.im * o.re,
        }
    }
}

impl Neg for C64 {
    type Output = C64;
    fn neg(self) -> C64 {
        C64 {
            re: -self.re,
            im: -self.im,
        }
    }
}

/// `zeta_k = exp(i pi (2k+1) / n)` — the k-th stored root for ring size n.
fn zeta(k: usize, n: usize) -> C64 {
    let angle = std::f64::consts::PI * (2 * k + 1) as f64 / n as f64;
    C64::new(angle.cos(), angle.sin())
}

/// Forward FFT of a real polynomial (length `n >= 2`, power of two) into
/// `n/2` stored evaluations.
///
/// # Panics
///
/// Panics if `n` is not a power of two `>= 2`.
///
/// # Examples
///
/// ```
/// use ctgauss_falcon::fft::{fft, ifft};
///
/// let a = vec![1.0, 2.0, 3.0, 4.0];
/// let back = ifft(&fft(&a));
/// for (x, y) in a.iter().zip(&back) {
///     assert!((x - y).abs() < 1e-12);
/// }
/// ```
pub fn fft(coeffs: &[f64]) -> Vec<C64> {
    let n = coeffs.len();
    assert!(
        n >= 2 && n.is_power_of_two(),
        "ring size must be a power of two >= 2"
    );
    if n == 2 {
        return vec![C64::new(coeffs[0], coeffs[1])];
    }
    let half: usize = n / 2;
    let even: Vec<f64> = (0..half).map(|i| coeffs[2 * i]).collect();
    let odd: Vec<f64> = (0..half).map(|i| coeffs[2 * i + 1]).collect();
    let fe = fft(&even);
    let fo = fft(&odd);
    // Stored points k = 0..n/2; for k < n/4 the square lands on stored
    // half-ring point k, for k >= n/4 on the conjugate of n/2-1-k.
    let mut out = vec![C64::default(); half];
    let quarter = n / 4;
    for k in 0..quarter {
        let z = zeta(k, n);
        out[k] = fe[k] + z * fo[k];
        out[half - 1 - k] = (fe[k] - z * fo[k]).conj();
    }
    out
}

/// Inverse FFT back to real coefficients (length `2 * values.len()`).
///
/// # Panics
///
/// Panics if the input is empty or not a power of two in length.
pub fn ifft(values: &[C64]) -> Vec<f64> {
    let half = values.len();
    let n = 2 * half;
    assert!(
        half >= 1 && half.is_power_of_two(),
        "invalid FFT vector length"
    );
    if n == 2 {
        return vec![values[0].re, values[0].im];
    }
    let (fe, fo) = split(values);
    let even = ifft(&fe);
    let odd = ifft(&fo);
    let mut out = vec![0.0; n];
    for i in 0..half {
        out[2 * i] = even[i];
        out[2 * i + 1] = odd[i];
    }
    out
}

/// Falcon's `splitfft`: the FFT images of the even/odd coefficient halves.
///
/// Input length `n/2 >= 2` (ring size `n >= 4`); outputs have length `n/4`.
///
/// # Panics
///
/// Panics on rings smaller than 4 (at ring size 2 the split is just
/// re/im, handled inline by the callers).
pub fn split(values: &[C64]) -> (Vec<C64>, Vec<C64>) {
    let half = values.len();
    let n = 2 * half;
    assert!(half >= 2, "split needs ring size >= 4");
    let quarter = n / 4;
    let mut f0 = vec![C64::default(); quarter];
    let mut f1 = vec![C64::default(); quarter];
    for k in 0..quarter {
        let a = values[k];
        let b_conj = values[half - 1 - k].conj();
        let z = zeta(k, n);
        f0[k] = (a + b_conj).scale(0.5);
        f1[k] = ((a - b_conj).scale(0.5)).div(z);
    }
    (f0, f1)
}

/// Falcon's `mergefft`: inverse of [`split`].
///
/// # Panics
///
/// Panics if the halves have different lengths or are empty.
pub fn merge(f0: &[C64], f1: &[C64]) -> Vec<C64> {
    assert_eq!(f0.len(), f1.len(), "halves must match");
    assert!(!f0.is_empty(), "merge needs at least ring size 4");
    let quarter = f0.len();
    let n = 4 * quarter;
    let half = n / 2;
    let mut out = vec![C64::default(); half];
    for k in 0..quarter {
        let z = zeta(k, n);
        let t = z * f1[k];
        out[k] = f0[k] + t;
        out[half - 1 - k] = (f0[k] - t).conj();
    }
    out
}

/// Pointwise product of two FFT vectors.
pub fn mul_fft(a: &[C64], b: &[C64]) -> Vec<C64> {
    a.iter().zip(b).map(|(&x, &y)| x * y).collect()
}

/// Pointwise `a * conj(b)` (multiplication by the adjoint).
pub fn mul_adj_fft(a: &[C64], b: &[C64]) -> Vec<C64> {
    a.iter().zip(b).map(|(&x, &y)| x * y.conj()).collect()
}

/// Pointwise sum.
pub fn add_fft(a: &[C64], b: &[C64]) -> Vec<C64> {
    a.iter().zip(b).map(|(&x, &y)| x + y).collect()
}

/// Pointwise difference.
pub fn sub_fft(a: &[C64], b: &[C64]) -> Vec<C64> {
    a.iter().zip(b).map(|(&x, &y)| x - y).collect()
}

/// Squared L2 norm of the underlying real polynomial from its FFT image
/// (Parseval: `sum a_i^2 = (2/n) * sum |a_hat_k|^2` over stored points).
pub fn norm_sq_fft(a: &[C64]) -> f64 {
    let n = 2 * a.len();
    a.iter().map(|v| v.norm_sq()).sum::<f64>() * 2.0 / n as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_negacyclic_mul(a: &[f64], b: &[f64]) -> Vec<f64> {
        let n = a.len();
        let mut out = vec![0.0; n];
        for i in 0..n {
            for j in 0..n {
                let p = a[i] * b[j];
                if i + j < n {
                    out[i + j] += p;
                } else {
                    out[i + j - n] -= p;
                }
            }
        }
        out
    }

    #[test]
    fn fft_roundtrip_various_sizes() {
        for n in [2usize, 4, 8, 64, 512] {
            let coeffs: Vec<f64> = (0..n)
                .map(|i| ((i * 37 + 11) % 101) as f64 - 50.0)
                .collect();
            let back = ifft(&fft(&coeffs));
            for (i, (x, y)) in coeffs.iter().zip(&back).enumerate() {
                assert!((x - y).abs() < 1e-9, "n={n}, coeff {i}: {x} vs {y}");
            }
        }
    }

    #[test]
    fn fft_n2_is_re_im() {
        let v = fft(&[3.0, -5.0]);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0], C64::new(3.0, -5.0));
    }

    #[test]
    fn fft_multiplication_is_negacyclic() {
        for n in [4usize, 8, 32] {
            let a: Vec<f64> = (0..n).map(|i| (i as f64) - 1.5).collect();
            let b: Vec<f64> = (0..n).map(|i| ((i * i) % 7) as f64).collect();
            let via_fft = ifft(&mul_fft(&fft(&a), &fft(&b)));
            let naive = naive_negacyclic_mul(&a, &b);
            for i in 0..n {
                assert!(
                    (via_fft[i] - naive[i]).abs() < 1e-8,
                    "n={n} coeff {i}: {} vs {}",
                    via_fft[i],
                    naive[i]
                );
            }
        }
    }

    #[test]
    fn split_merge_roundtrip() {
        for n in [4usize, 8, 64] {
            let coeffs: Vec<f64> = (0..n).map(|i| (i as f64).sin() * 10.0).collect();
            let v = fft(&coeffs);
            let (f0, f1) = split(&v);
            let back = merge(&f0, &f1);
            for k in 0..v.len() {
                assert!((v[k].re - back[k].re).abs() < 1e-10, "n={n} k={k}");
                assert!((v[k].im - back[k].im).abs() < 1e-10, "n={n} k={k}");
            }
        }
    }

    #[test]
    fn split_matches_even_odd_coefficients() {
        // split(FFT(a)) must equal (FFT(even coeffs), FFT(odd coeffs)).
        let a = [1.0, -2.0, 3.0, 0.5, -1.25, 4.0, 0.0, 2.0];
        let (f0, f1) = split(&fft(&a));
        let even = fft(&[1.0, 3.0, -1.25, 0.0]);
        let odd = fft(&[-2.0, 0.5, 4.0, 2.0]);
        for k in 0..2 {
            assert!((f0[k].re - even[k].re).abs() < 1e-10);
            assert!((f0[k].im - even[k].im).abs() < 1e-10);
            assert!((f1[k].re - odd[k].re).abs() < 1e-10);
            assert!((f1[k].im - odd[k].im).abs() < 1e-10);
        }
    }

    #[test]
    fn adjoint_is_conjugate() {
        // adj(a)(x) = a0 - a_{n-1} x - ... - a_1 x^{n-1}; FFT(adj a) =
        // conj(FFT(a)).
        let a = [2.0, -1.0, 4.0, 3.0];
        let mut adj = vec![0.0; 4];
        adj[0] = a[0];
        for i in 1..4 {
            adj[i] = -a[4 - i];
        }
        let fa = fft(&a);
        let fadj = fft(&adj);
        for k in 0..2 {
            assert!((fa[k].conj().re - fadj[k].re).abs() < 1e-10);
            assert!((fa[k].conj().im - fadj[k].im).abs() < 1e-10);
        }
    }

    #[test]
    fn parseval_norm() {
        let a = [1.0, 2.0, -3.0, 0.5, 1.5, -2.5, 0.0, 4.0];
        let direct: f64 = a.iter().map(|x| x * x).sum();
        let via_fft = norm_sq_fft(&fft(&a));
        assert!((direct - via_fft).abs() < 1e-9, "{direct} vs {via_fft}");
    }

    #[test]
    fn complex_division() {
        let a = C64::new(3.0, 4.0);
        let b = C64::new(1.0, -2.0);
        let q = a.div(b);
        let back = q * b;
        assert!((back.re - a.re).abs() < 1e-12);
        assert!((back.im - a.im).abs() < 1e-12);
    }
}
