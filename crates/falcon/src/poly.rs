//! Integer polynomial arithmetic over `Z[x]/(x^n + 1)` with big-integer
//! coefficients — the workhorse of NTRUSolve's field-norm tower.

use ctgauss_fixedpoint::BigInt;

/// Negacyclic product `a * b mod (x^n + 1)` (schoolbook; the tower's
/// degrees shrink as fast as its coefficients grow, so schoolbook with
/// Karatsuba limbs underneath is plenty).
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn negacyclic_mul(a: &[BigInt], b: &[BigInt]) -> Vec<BigInt> {
    assert_eq!(a.len(), b.len(), "length mismatch");
    let n = a.len();
    let mut out = vec![BigInt::zero(); n];
    for i in 0..n {
        if a[i].is_zero() {
            continue;
        }
        for j in 0..n {
            if b[j].is_zero() {
                continue;
            }
            let p = a[i].mul(&b[j]);
            if i + j < n {
                out[i + j] = out[i + j].add(&p);
            } else {
                out[i + j - n] = out[i + j - n].sub(&p);
            }
        }
    }
    out
}

/// `f(-x)`: negates odd-index coefficients.
pub fn galois_conjugate(f: &[BigInt]) -> Vec<BigInt> {
    f.iter()
        .enumerate()
        .map(|(i, c)| if i % 2 == 1 { c.neg() } else { c.clone() })
        .collect()
}

/// The field norm `N(f)(y) = f(x) f(-x)` with `y = x^2`: a polynomial of
/// half the degree over `Z[y]/(y^(n/2) + 1)`.
///
/// # Panics
///
/// Panics if the length is odd or less than 2.
pub fn field_norm(f: &[BigInt]) -> Vec<BigInt> {
    let n = f.len();
    assert!(
        n >= 2 && n.is_multiple_of(2),
        "field norm needs even length"
    );
    let prod = negacyclic_mul(f, &galois_conjugate(f));
    // f(x) f(-x) is invariant under x -> -x, so odd coefficients vanish.
    for (i, c) in prod.iter().enumerate() {
        if i % 2 == 1 {
            debug_assert!(c.is_zero(), "odd coefficient of a field norm must vanish");
        }
    }
    (0..n / 2).map(|i| prod[2 * i].clone()).collect()
}

/// Expands `p(y)` to `p(x^2)` at double length.
pub fn expand_even(p: &[BigInt]) -> Vec<BigInt> {
    let mut out = vec![BigInt::zero(); 2 * p.len()];
    for (i, c) in p.iter().enumerate() {
        out[2 * i] = c.clone();
    }
    out
}

/// `a - k * b` coefficient-wise scaled subtraction where `k` is a
/// polynomial: `a -= k * b` in the ring.
pub fn sub_mul_assign(a: &mut [BigInt], k: &[BigInt], b: &[BigInt]) {
    let prod = negacyclic_mul(k, b);
    for (x, p) in a.iter_mut().zip(prod) {
        *x = x.sub(&p);
    }
}

/// Maximum coefficient bit length of a polynomial.
pub fn max_bit_len(p: &[BigInt]) -> u32 {
    p.iter().map(BigInt::bit_len).max().unwrap_or(0)
}

/// Converts a coefficient to `f64` after dividing by `2^shift` —
/// `to_f64_scaled(c, s) ~= c / 2^s` with 53-bit precision and no overflow
/// for any coefficient size as long as `bit_len - shift` stays within the
/// `f64` exponent range.
pub fn to_f64_scaled(c: &BigInt, shift: u32) -> f64 {
    let bits = c.bit_len();
    if bits == 0 {
        return 0.0;
    }
    // Take the top 53 bits.
    let take = bits.min(53);
    let top = c
        .magnitude()
        .shr(bits - take)
        .to_u64()
        .expect("<= 53 bits fits") as f64;
    let exp = i64::from(bits) - i64::from(take) - i64::from(shift);
    let v = top * 2f64.powi(exp as i32);
    if c.is_negative() {
        -v
    } else {
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn poly(vals: &[i64]) -> Vec<BigInt> {
        vals.iter().map(|&v| BigInt::from_i64(v)).collect()
    }

    #[test]
    fn negacyclic_wraps_with_sign() {
        // (x) * (x) = x^2 = -1 in Z[x]/(x^2+1).
        let x = poly(&[0, 1]);
        assert_eq!(negacyclic_mul(&x, &x), poly(&[-1, 0]));
        // (1 + x)(1 - x) = 1 - x^2 = 2 mod x^2+1.
        assert_eq!(
            negacyclic_mul(&poly(&[1, 1]), &poly(&[1, -1])),
            poly(&[2, 0])
        );
    }

    #[test]
    fn galois_conjugate_signs() {
        assert_eq!(
            galois_conjugate(&poly(&[1, 2, 3, 4])),
            poly(&[1, -2, 3, -4])
        );
    }

    #[test]
    fn field_norm_degree_one() {
        // f = a + bx over Z[x]/(x^2+1): N(f) = f(x) f(-x) = a^2 + b^2.
        let f = poly(&[3, 5]);
        assert_eq!(field_norm(&f), poly(&[34]));
    }

    #[test]
    fn field_norm_multiplicative() {
        // N(fg) = N(f) N(g).
        let f = poly(&[2, -1, 0, 3]);
        let g = poly(&[1, 4, -2, 1]);
        let fg = negacyclic_mul(&f, &g);
        let lhs = field_norm(&fg);
        let rhs = negacyclic_mul(&field_norm(&f), &field_norm(&g));
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn norm_tower_identity() {
        // N(f)(x^2) = f(x) * f(-x) as full-length polynomials.
        let f = poly(&[1, 2, 3, 4, 5, 6, 7, 8]);
        let lhs = expand_even(&field_norm(&f));
        let rhs = negacyclic_mul(&f, &galois_conjugate(&f));
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn sub_mul() {
        let mut a = poly(&[10, 10]);
        sub_mul_assign(&mut a, &poly(&[2, 0]), &poly(&[1, 3]));
        assert_eq!(a, poly(&[8, 4]));
    }

    #[test]
    fn scaled_f64_conversion() {
        let c = BigInt::from_i64(3).shl(100); // 3 * 2^100
        let v = to_f64_scaled(&c, 100);
        assert!((v - 3.0).abs() < 1e-12);
        let v2 = to_f64_scaled(&c.neg(), 90);
        assert!((v2 + 3.0 * 1024.0).abs() < 1e-9);
        assert_eq!(to_f64_scaled(&BigInt::zero(), 10), 0.0);
    }

    #[test]
    fn bit_len_of_poly() {
        assert_eq!(max_bit_len(&poly(&[0, 0])), 0);
        assert_eq!(max_bit_len(&poly(&[5, -9])), 4);
    }
}
