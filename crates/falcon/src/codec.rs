//! Signature and public-key serialization.
//!
//! Signatures use a Golomb-Rice style compression matching Falcon's
//! approach: per coefficient a sign bit, the 7 low magnitude bits, then
//! the high magnitude in unary (`k` zeros and a terminating one). Public
//! keys pack 14 bits per mod-q coefficient.

use crate::ntt::Q;
use crate::scheme::{FalconError, Signature};

/// A growable bit buffer (MSB-first within bytes).
#[derive(Debug, Default)]
struct BitWriter {
    bytes: Vec<u8>,
    used: u32,
}

impl BitWriter {
    fn push(&mut self, bit: bool) {
        if self.used.is_multiple_of(8) {
            self.bytes.push(0);
        }
        if bit {
            let i = (self.used / 8) as usize;
            self.bytes[i] |= 0x80 >> (self.used % 8);
        }
        self.used += 1;
    }

    fn push_bits(&mut self, value: u32, count: u32) {
        for i in (0..count).rev() {
            self.push((value >> i) & 1 == 1);
        }
    }

    fn finish(self) -> Vec<u8> {
        self.bytes
    }
}

#[derive(Debug)]
struct BitReader<'a> {
    bytes: &'a [u8],
    pos: u32,
}

impl<'a> BitReader<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        BitReader { bytes, pos: 0 }
    }

    fn read(&mut self) -> Option<bool> {
        let i = (self.pos / 8) as usize;
        if i >= self.bytes.len() {
            return None;
        }
        let bit = self.bytes[i] & (0x80 >> (self.pos % 8)) != 0;
        self.pos += 1;
        Some(bit)
    }

    fn read_bits(&mut self, count: u32) -> Option<u32> {
        let mut v = 0;
        for _ in 0..count {
            v = (v << 1) | u32::from(self.read()?);
        }
        Some(v)
    }

    /// Remaining bits must all be zero padding.
    fn only_zero_padding_left(&mut self) -> bool {
        while let Some(bit) = self.read() {
            if bit {
                return false;
            }
        }
        true
    }
}

/// Maximum coefficient magnitude accepted by the codec (prevents
/// pathological unary runs).
const MAX_MAGNITUDE: u16 = 2047;

/// Compresses a signature into bytes: 40-byte nonce, then the coefficient
/// stream.
///
/// # Errors
///
/// [`FalconError::MalformedSignature`] if a coefficient magnitude exceeds
/// the codec bound (cannot happen for honestly generated signatures).
pub fn encode_signature(sig: &Signature) -> Result<Vec<u8>, FalconError> {
    let mut w = BitWriter::default();
    for &v in &sig.s1 {
        let magnitude = v.unsigned_abs();
        if magnitude > MAX_MAGNITUDE {
            return Err(FalconError::MalformedSignature);
        }
        w.push(v < 0);
        w.push_bits(u32::from(magnitude) & 0x7f, 7);
        let high = magnitude >> 7;
        for _ in 0..high {
            w.push(false);
        }
        w.push(true);
    }
    let mut out = Vec::with_capacity(40 + w.bytes.len());
    out.extend_from_slice(&sig.nonce);
    out.extend_from_slice(&w.finish());
    Ok(out)
}

/// Decompresses a signature for ring size `n`.
///
/// Rejects non-canonical encodings: negative zero, out-of-range unary
/// runs, truncation, and non-zero trailing padding.
///
/// # Errors
///
/// [`FalconError::MalformedSignature`] on any structural defect.
pub fn decode_signature(bytes: &[u8], n: usize) -> Result<Signature, FalconError> {
    if bytes.len() < 40 {
        return Err(FalconError::MalformedSignature);
    }
    let mut nonce = [0u8; 40];
    nonce.copy_from_slice(&bytes[..40]);
    let mut r = BitReader::new(&bytes[40..]);
    let mut s1 = Vec::with_capacity(n);
    for _ in 0..n {
        let negative = r.read().ok_or(FalconError::MalformedSignature)?;
        let low = r.read_bits(7).ok_or(FalconError::MalformedSignature)?;
        let mut high = 0u32;
        loop {
            let bit = r.read().ok_or(FalconError::MalformedSignature)?;
            if bit {
                break;
            }
            high += 1;
            if (high << 7) > u32::from(MAX_MAGNITUDE) {
                return Err(FalconError::MalformedSignature);
            }
        }
        let magnitude = (high << 7) | low;
        if negative && magnitude == 0 {
            // Non-canonical negative zero.
            return Err(FalconError::MalformedSignature);
        }
        let v = magnitude as i16;
        s1.push(if negative { -v } else { v });
    }
    if !r.only_zero_padding_left() {
        return Err(FalconError::MalformedSignature);
    }
    Ok(Signature { nonce, s1 })
}

/// Packs a public key as 14 bits per coefficient.
///
/// # Panics
///
/// Panics if a coefficient is out of `[0, q)`.
pub fn encode_public_key(h: &[u32]) -> Vec<u8> {
    let mut w = BitWriter::default();
    for &c in h {
        assert!(c < Q, "public key coefficient out of range");
        w.push_bits(c, 14);
    }
    w.finish()
}

/// Unpacks a public key of ring size `n`.
///
/// # Errors
///
/// [`FalconError::MalformedSignature`] on truncation or out-of-range
/// coefficients.
pub fn decode_public_key(bytes: &[u8], n: usize) -> Result<Vec<u32>, FalconError> {
    let mut r = BitReader::new(bytes);
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let v = r.read_bits(14).ok_or(FalconError::MalformedSignature)?;
        if v >= Q {
            return Err(FalconError::MalformedSignature);
        }
        out.push(v);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sig(values: &[i16]) -> Signature {
        Signature {
            nonce: [7u8; 40],
            s1: values.to_vec(),
        }
    }

    #[test]
    fn roundtrip_simple() {
        let s = sig(&[0, 1, -1, 127, -128, 128, 300, -1000, 2047, -2047]);
        let bytes = encode_signature(&s).unwrap();
        let back = decode_signature(&bytes, 10).unwrap();
        assert_eq!(s, back);
    }

    #[test]
    fn rejects_oversized_coefficient() {
        let s = sig(&[2048]);
        assert_eq!(encode_signature(&s), Err(FalconError::MalformedSignature));
    }

    #[test]
    fn rejects_negative_zero() {
        // Craft: sign=1, low=0000000, terminator=1 -> 9 bits.
        let mut w = BitWriter::default();
        w.push(true);
        w.push_bits(0, 7);
        w.push(true);
        let mut bytes = vec![0u8; 40];
        bytes.extend(w.finish());
        assert_eq!(
            decode_signature(&bytes, 1),
            Err(FalconError::MalformedSignature)
        );
    }

    #[test]
    fn rejects_truncation() {
        let s = sig(&[5, -9, 44]);
        let bytes = encode_signature(&s).unwrap();
        assert!(
            decode_signature(&bytes[..bytes.len() - 1], 3).is_err() ||
                // last byte may be pure padding; removing it can still parse —
                // then dropping one more must fail
                decode_signature(&bytes[..bytes.len() - 2], 3).is_err()
        );
        assert_eq!(
            decode_signature(&bytes[..10], 3),
            Err(FalconError::MalformedSignature)
        );
    }

    #[test]
    fn rejects_nonzero_padding() {
        let s = sig(&[1, 2]);
        let mut bytes = encode_signature(&s).unwrap();
        let last = bytes.len() - 1;
        bytes[last] |= 0x01; // pollute padding
                             // Either the padding check or an extended unary run must fail it.
        assert!(decode_signature(&bytes, 2).is_err());
    }

    #[test]
    fn compression_size_reasonable() {
        // Gaussian-ish coefficients around sigma ~ 170: expect ~(1 + 7 +
        // ~2.3) bits per coefficient, far below 16-bit raw encoding.
        let values: Vec<i16> = (0..512)
            .map(|i| (f64::from(i - 256) * 0.66).round() as i16)
            .collect();
        let s = sig(&values);
        let bytes = encode_signature(&s).unwrap();
        assert!(
            bytes.len() < 40 + 512 * 2,
            "no compression achieved: {}",
            bytes.len()
        );
    }

    #[test]
    fn public_key_roundtrip() {
        let h: Vec<u32> = (0..256u32).map(|i| (i * 97) % Q).collect();
        let bytes = encode_public_key(&h);
        assert_eq!(bytes.len(), 256 * 14 / 8);
        assert_eq!(decode_public_key(&bytes, 256).unwrap(), h);
    }

    #[test]
    fn public_key_rejects_out_of_range() {
        let mut w = BitWriter::default();
        w.push_bits(Q, 14); // exactly q: invalid
        let bytes = w.finish();
        assert!(decode_public_key(&bytes, 1).is_err());
    }
}
