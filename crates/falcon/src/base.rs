//! The four base-sampler configurations of Table 1, each owning a ChaCha
//! PRNG (the paper keeps the PRNG fixed across samplers).

use std::sync::Arc;

use ctgauss_cdt::{BinarySearchCdt, ByteScanCdt, CdtTable, LinearSearchCdt};
use ctgauss_core::{BatchScratch, CtSampler, SamplerSpec, Strategy};
use ctgauss_knuthyao::GaussianParams;
use ctgauss_prng::ChaChaRng;

use crate::sign::BaseSampler;

/// The paper's base-sampler parameters: sigma = 2, n = 128 bits, tau = 13.
fn base_params() -> GaussianParams {
    GaussianParams::new("2", 128, 13).expect("paper parameters are valid")
}

/// Lane-block width of the signing path's batches: 8 × 64 samples per
/// compiled-kernel pass.
const WIDE: usize = 8;

/// "This work": the constant-time bitsliced Knuth-Yao sampler, consumed
/// through its wide (8 x 64 lanes) batch interface. The compiled-kernel
/// scratch and the sample buffer are allocated once at construction and
/// reused for every refill, so steady-state signing performs no heap
/// allocation in the sampling path.
pub struct KnuthYaoCtBase {
    sampler: Arc<CtSampler>,
    rng: ChaChaRng,
    scratch: BatchScratch<WIDE>,
    buf: [i32; 64 * WIDE],
    pos: usize,
}

impl KnuthYaoCtBase {
    /// Builds the sampler (split-exact strategy) and seeds its PRNG.
    ///
    /// Goes through [`SamplerSpec::build_shared`], so signing cold-starts
    /// from a warm [`KernelCache`](ctgauss_core::KernelCache) — the n =
    /// 128 minimization (the dominant startup cost) is skipped whenever a
    /// precompiled artifact is available.
    pub fn new(seed: u64) -> Self {
        let sampler = SamplerSpec::new("2", 128)
            .tail_cut(13)
            .strategy(Strategy::SplitExact)
            .build_shared()
            .expect("paper parameters build");
        let scratch = sampler.scratch::<WIDE>();
        KnuthYaoCtBase {
            sampler,
            rng: ChaChaRng::from_u64_seed(seed),
            scratch,
            buf: [0; 64 * WIDE],
            pos: 64 * WIDE,
        }
    }

    /// Access to the inner sampler (for reports).
    pub fn sampler(&self) -> &CtSampler {
        &self.sampler
    }
}

impl BaseSampler for KnuthYaoCtBase {
    fn next(&mut self) -> i32 {
        if self.pos == self.buf.len() {
            self.sampler
                .sample_batch_with(&mut self.rng, &mut self.scratch, &mut self.buf);
            self.pos = 0;
        }
        let v = self.buf[self.pos];
        self.pos += 1;
        v
    }

    fn name(&self) -> &'static str {
        "bitsliced Knuth-Yao (this work)"
    }
}

/// "CDT": the classical binary-search CDT sampler (non-constant-time).
pub struct BinaryCdtBase {
    table: CdtTable,
    rng: ChaChaRng,
}

impl BinaryCdtBase {
    /// Builds the table and seeds the PRNG.
    pub fn new(seed: u64) -> Self {
        BinaryCdtBase {
            table: CdtTable::build(&base_params()).expect("paper parameters build"),
            rng: ChaChaRng::from_u64_seed(seed),
        }
    }
}

impl BaseSampler for BinaryCdtBase {
    fn next(&mut self) -> i32 {
        BinarySearchCdt::new(&self.table).sample_signed(&mut self.rng)
    }

    fn name(&self) -> &'static str {
        "binary-search CDT"
    }
}

/// "Byte-scanning CDT": the lazy byte-wise scanner (fastest
/// non-constant-time baseline).
pub struct ByteScanCdtBase {
    table: CdtTable,
    rng: ChaChaRng,
}

impl ByteScanCdtBase {
    /// Builds the table and seeds the PRNG.
    pub fn new(seed: u64) -> Self {
        ByteScanCdtBase {
            table: CdtTable::build(&base_params()).expect("paper parameters build"),
            rng: ChaChaRng::from_u64_seed(seed),
        }
    }
}

impl BaseSampler for ByteScanCdtBase {
    fn next(&mut self) -> i32 {
        ByteScanCdt::new(&self.table).sample_signed(&mut self.rng)
    }

    fn name(&self) -> &'static str {
        "byte-scanning CDT"
    }
}

/// "Linear search CDT": the constant-time exhaustive-comparison sampler.
pub struct LinearCdtBase {
    table: CdtTable,
    rng: ChaChaRng,
}

impl LinearCdtBase {
    /// Builds the table and seeds the PRNG.
    pub fn new(seed: u64) -> Self {
        LinearCdtBase {
            table: CdtTable::build(&base_params()).expect("paper parameters build"),
            rng: ChaChaRng::from_u64_seed(seed),
        }
    }
}

impl BaseSampler for LinearCdtBase {
    fn next(&mut self) -> i32 {
        LinearSearchCdt::new(&self.table).sample_signed(&mut self.rng)
    }

    fn name(&self) -> &'static str {
        "linear-search CDT (constant-time)"
    }
}

/// Builds all four Table 1 base samplers with distinct seeds.
pub fn all_base_samplers(seed: u64) -> Vec<Box<dyn BaseSampler>> {
    vec![
        Box::new(ByteScanCdtBase::new(seed)),
        Box::new(BinaryCdtBase::new(seed + 1)),
        Box::new(LinearCdtBase::new(seed + 2)),
        Box::new(KnuthYaoCtBase::new(seed + 3)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    /// All four base samplers target the identical distribution; check
    /// mean/variance of each.
    #[test]
    fn all_bases_share_moments() {
        for mut base in all_base_samplers(42) {
            let n = 40_000;
            let mut sum = 0f64;
            let mut sq = 0f64;
            for _ in 0..n {
                let v = f64::from(base.next());
                sum += v;
                sq += v * v;
            }
            let mean = sum / f64::from(n);
            let var = sq / f64::from(n) - mean * mean;
            assert!(mean.abs() < 0.05, "{}: mean {mean}", base.name());
            assert!((var - 4.0).abs() < 0.2, "{}: var {var}", base.name());
        }
    }

    #[test]
    fn names_are_distinct() {
        let names: Vec<&str> = all_base_samplers(1).iter().map(|b| b.name()).collect();
        let mut dedup = names.clone();
        dedup.dedup();
        assert_eq!(names.len(), 4);
        assert_eq!(dedup.len(), 4);
    }
}
