//! The Falcon tree: ffLDL* decomposition of the basis Gram matrix.

use crate::fft::{add_fft, mul_adj_fft, mul_fft, split, sub_fft, C64};

/// A node of the ffLDL tree for ring size `n >= 2`.
///
/// Interior nodes carry the `l10` vector of the LDL* decomposition and two
/// children for the half-size rings; ring size 2 is the base, carrying the
/// (real) standard deviations used by the ffSampling base case.
#[derive(Debug, Clone)]
pub enum LdlTree {
    /// Ring size >= 4.
    Node {
        /// `l10 = g10 / g00` in FFT form (length = ring size / 2).
        l10: Vec<C64>,
        /// Tree for the `d00` sub-Gram.
        child0: Box<LdlTree>,
        /// Tree for the `d11` sub-Gram.
        child1: Box<LdlTree>,
    },
    /// Ring size 2: one complex `l10` plus the two leaf sigmas.
    Leaf {
        /// `l10` (single complex value).
        l10: C64,
        /// `sigma / sqrt(d00)` — used for the `z0` coordinates.
        sigma0: f64,
        /// `sigma / sqrt(d11)` — used for the `z1` coordinates.
        sigma1: f64,
    },
}

impl LdlTree {
    /// Builds the tree from a 2x2 self-adjoint Gram matrix in FFT form
    /// (`g10` is implicitly `adj(g01)`), normalizing leaves to
    /// `sigma_sig / sqrt(d_ii)`.
    ///
    /// # Panics
    ///
    /// Panics if the Gram is not positive definite at some point (the
    /// key-generation checks prevent this for valid bases).
    pub fn build(g00: &[C64], g01: &[C64], g11: &[C64], sigma_sig: f64) -> LdlTree {
        let hn = g00.len();
        // l10 = g10 / g00 = adj(g01) / g00 (g00 is real positive).
        let l10: Vec<C64> = g01
            .iter()
            .zip(g00)
            .map(|(&a, &d)| {
                assert!(d.re > 0.0, "Gram diagonal must be positive");
                a.conj().scale(1.0 / d.re)
            })
            .collect();
        // d11 = g11 - |l10|^2 g00 (real at every point).
        let d11: Vec<C64> = (0..hn)
            .map(|k| C64::real(g11[k].re - l10[k].norm_sq() * g00[k].re))
            .collect();
        if hn == 1 {
            let d00 = g00[0].re;
            let d11v = d11[0].re;
            assert!(d11v > 0.0, "Gram must stay positive definite");
            return LdlTree::Leaf {
                l10: l10[0],
                sigma0: sigma_sig / d00.sqrt(),
                sigma1: sigma_sig / d11v.sqrt(),
            };
        }
        // Recurse on the split diagonals: child Gram of a self-adjoint d is
        // [[d_even, d_odd], [adj(d_odd), d_even]].
        let (d00_e, d00_o) = split(g00);
        let (d11_e, d11_o) = split(&d11);
        let child0 = LdlTree::build(&d00_e, &d00_o, &d00_e, sigma_sig);
        let child1 = LdlTree::build(&d11_e, &d11_o, &d11_e, sigma_sig);
        LdlTree::Node {
            l10,
            child0: Box::new(child0),
            child1: Box::new(child1),
        }
    }

    /// All leaf sigmas, in tree order (2 per base ring; `2n` total for ring
    /// size `n` at the root... one per sampled coordinate).
    pub fn leaf_sigmas(&self) -> Vec<f64> {
        let mut out = Vec::new();
        self.collect_sigmas(&mut out);
        out
    }

    fn collect_sigmas(&self, out: &mut Vec<f64>) {
        match self {
            LdlTree::Leaf { sigma0, sigma1, .. } => {
                out.push(*sigma0);
                out.push(*sigma1);
            }
            LdlTree::Node { child0, child1, .. } => {
                child1.collect_sigmas(out);
                child0.collect_sigmas(out);
            }
        }
    }
}

/// Builds the Gram matrix of the basis `B = [[g, -f], [G, -F]]` in FFT
/// form: `g00 = g g* + f f*`, `g01 = g G* + f F*`, `g11 = G G* + F F*`.
pub fn basis_gram(
    f: &[C64],
    g: &[C64],
    cap_f: &[C64],
    cap_g: &[C64],
) -> (Vec<C64>, Vec<C64>, Vec<C64>) {
    let g00 = add_fft(&mul_adj_fft(g, g), &mul_adj_fft(f, f));
    let g01 = add_fft(&mul_adj_fft(g, cap_g), &mul_adj_fft(f, cap_f));
    let g11 = add_fft(&mul_adj_fft(cap_g, cap_g), &mul_adj_fft(cap_f, cap_f));
    (g00, g01, g11)
}

/// Verifies the LDL identity `G = L D L*` holds pointwise at the root
/// (testing hook).
pub fn ldl_residual(g00: &[C64], g01: &[C64], g11: &[C64]) -> f64 {
    let hn = g00.len();
    let l10: Vec<C64> = g01
        .iter()
        .zip(g00)
        .map(|(&a, &d)| a.conj().scale(1.0 / d.re))
        .collect();
    // Reconstruct g01 = adj(l10) * g00 and g11 = d11 + |l10|^2 g00.
    let rec_g01: Vec<C64> = (0..hn).map(|k| l10[k].conj() * g00[k]).collect();
    let d11: Vec<C64> = (0..hn)
        .map(|k| C64::real(g11[k].re - l10[k].norm_sq() * g00[k].re))
        .collect();
    let rec_g11: Vec<C64> = (0..hn)
        .map(|k| d11[k] + C64::real(l10[k].norm_sq() * g00[k].re))
        .collect();
    let e1 = sub_fft(&rec_g01, g01);
    let e2 = sub_fft(&rec_g11, g11);
    e1.iter()
        .chain(&e2)
        .map(|c| c.norm_sq())
        .sum::<f64>()
        .sqrt()
}

/// Pointwise check hook used by signing tests: recompose `z B` and verify
/// the determinant identity `g00 g11 - |g01|^2 = q^2` at every point.
pub fn gram_determinant_error(g00: &[C64], g01: &[C64], g11: &[C64], q: f64) -> f64 {
    let mut worst: f64 = 0.0;
    for k in 0..g00.len() {
        let det = g00[k].re * g11[k].re - g01[k].norm_sq();
        worst = worst.max((det - q * q).abs() / (q * q));
    }
    worst
}

/// Multiplies `l10` into `(t1 - z1)` and adds to `t0` — the back-substitution
/// step `t0' = t0 + (t1 - z1) l10` shared by signing.
pub fn backsubstitute(t0: &[C64], t1: &[C64], z1: &[C64], l10: &[C64]) -> Vec<C64> {
    add_fft(t0, &mul_fft(&sub_fft(t1, z1), l10))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fft::fft;
    use crate::ntru::generate_basis;
    use crate::ntt::Q;
    use ctgauss_prng::ChaChaRng;

    fn basis_ffts(n: usize, seed: u64) -> (Vec<C64>, Vec<C64>, Vec<C64>, Vec<C64>) {
        let mut rng = ChaChaRng::from_u64_seed(seed);
        let b = generate_basis(n, &mut rng, 50).unwrap();
        let to_f = |p: &[i64]| -> Vec<C64> {
            let reals: Vec<f64> = p.iter().map(|&c| c as f64).collect();
            fft(&reals)
        };
        (to_f(&b.f), to_f(&b.g), to_f(&b.cap_f), to_f(&b.cap_g))
    }

    #[test]
    fn gram_determinant_is_q_squared() {
        // det(B B*) = det(B)^2 = q^2 at every FFT point.
        let (f, g, cap_f, cap_g) = basis_ffts(16, 11);
        let (g00, g01, g11) = basis_gram(&f, &g, &cap_f, &cap_g);
        let err = gram_determinant_error(&g00, &g01, &g11, f64::from(Q));
        assert!(err < 1e-6, "determinant error {err}");
    }

    #[test]
    fn ldl_reconstructs_gram() {
        let (f, g, cap_f, cap_g) = basis_ffts(16, 12);
        let (g00, g01, g11) = basis_gram(&f, &g, &cap_f, &cap_g);
        assert!(ldl_residual(&g00, &g01, &g11) < 1e-6);
    }

    #[test]
    fn tree_has_n_leaf_pairs_and_sane_sigmas() {
        let n = 16;
        let (f, g, cap_f, cap_g) = basis_ffts(n, 13);
        let (g00, g01, g11) = basis_gram(&f, &g, &cap_f, &cap_g);
        let sigma_sig = 1.55 * f64::from(Q).sqrt();
        let tree = LdlTree::build(&g00, &g01, &g11, sigma_sig);
        let sigmas = tree.leaf_sigmas();
        assert_eq!(sigmas.len(), n); // n/2 base rings x 2 sigmas
        for (i, s) in sigmas.iter().enumerate() {
            assert!(
                (1.0..=2.0).contains(s),
                "leaf sigma {i} out of base-sampler range: {s}"
            );
        }
    }

    #[test]
    fn product_of_leaf_variances_matches_determinant() {
        // prod over leaves of d_ii = prod over points of det Gram = q^(2n)
        // ... equivalently sum of 2 ln(sigma_sig/sigma_leaf) = n ln(q).
        let n = 16;
        let (f, g, cap_f, cap_g) = basis_ffts(n, 14);
        let (g00, g01, g11) = basis_gram(&f, &g, &cap_f, &cap_g);
        let sigma_sig = 1.55 * f64::from(Q).sqrt();
        let tree = LdlTree::build(&g00, &g01, &g11, sigma_sig);
        let log_det: f64 = tree
            .leaf_sigmas()
            .iter()
            .map(|s| 2.0 * (sigma_sig / s).ln())
            .sum();
        let expected = n as f64 * f64::from(Q).ln();
        assert!(
            (log_det - expected).abs() < 1e-6 * expected,
            "{log_det} vs {expected}"
        );
    }
}
