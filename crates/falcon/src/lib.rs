//! A Falcon-style NTRU lattice signature scheme with pluggable base
//! Gaussian samplers — the case-study application of the DAC 2019 paper
//! (Table 1).
//!
//! # What this is
//!
//! The paper plugs four fixed-parameter Gaussian samplers
//! (`D_{Z, 2, 0}`, 128-bit precision, tail cut 13) into Falcon signing and
//! compares throughput at the round-1 security levels
//! (N = 256 / 512 / 1024, q = 12289). This crate provides the complete
//! substrate, built from scratch:
//!
//! * [`fft`] — complex FFT over `R[x]/(x^n+1)` in Falcon's half-size
//!   representation, with `split`/`merge` for the tower of rings;
//! * [`ntt`] — exact arithmetic mod q for public keys and verification;
//! * [`poly`] / [`ntru`] — big-integer polynomial arithmetic and the full
//!   NTRUSolve field-norm tower with Babai reduction, producing a secret
//!   basis `[[g, -f], [G, -F]]` with `f G - g F = q` (verified exactly);
//! * [`tree`] — the ffLDL* Falcon tree with per-leaf Gaussian widths;
//! * [`sign`] — SamplerZ by rejection from the pluggable
//!   [`BaseSampler`](sign::BaseSampler), ffSampling, SHAKE-256
//!   hash-to-point;
//! * [`base`] — the four Table 1 base samplers (byte-scanning CDT,
//!   binary-search CDT, constant-time linear CDT, and the bitsliced
//!   Knuth-Yao sampler of the paper), all driven by ChaCha20;
//! * [`codec`] — compressed signature and public-key serialization.
//!
//! See `DESIGN.md` at the workspace root for the documented differences
//! from the (unavailable) round-1 reference C implementation.
//!
//! # Examples
//!
//! ```no_run
//! use ctgauss_falcon::base::KnuthYaoCtBase;
//! use ctgauss_falcon::{FalconParams, SecretKey};
//! use ctgauss_prng::ChaChaRng;
//!
//! let mut rng = ChaChaRng::from_u64_seed(1);
//! let sk = SecretKey::generate(FalconParams::level1(), &mut rng).unwrap();
//! let mut base = KnuthYaoCtBase::new(2);
//! let sig = sk.sign(b"message", &mut base, &mut rng).unwrap();
//! assert!(sk.public_key().verify(b"message", &sig));
//! ```
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod base;
pub mod codec;
pub mod fft;
pub mod ntru;
pub mod ntt;
pub mod poly;
mod scheme;
pub mod sign;
pub mod tree;

pub use scheme::{FalconError, FalconParams, PublicKey, SecretKey, Signature};
