//! Property tests for the `fill_u64s` stream-equivalence contract.
//!
//! The samplers draw every batch record through one `fill_u64s` call, and
//! the draw-order determinism contract (wide == W scalar batches, pool ==
//! scalar `sample_into`) holds only if the block-filled overrides are
//! exactly stream-equivalent to repeated `next_u64` — including across
//! block/rate refill boundaries and from unaligned starting positions.

use ctgauss_prng::{ChaChaRng, KeccakRng, RandomSource};
use proptest::prelude::*;

/// Request lengths that straddle every interesting refill boundary: the
/// ChaCha block is 8 words, the SHAKE-256 rate is 17 words, and batch
/// records are `n + 1` words for n up to 128.
const AWKWARD_LENS: [usize; 5] = [1, 63, 64, 65, 1000];

/// Drives `fill_u64s` through a schedule of awkward lengths on one
/// generator and repeated `next_u64` on an identically seeded twin; the
/// two must produce the same words and end at the same stream position.
fn check_block_fill_matches_word_loop<R, F>(make: F, seed: u64, prefix_bytes: usize, order: usize)
where
    R: RandomSource,
    F: Fn(u64) -> R,
{
    let mut fast = make(seed);
    let mut slow = make(seed);
    // Start mid-block: drain an arbitrary byte prefix through both.
    let mut skip = vec![0u8; prefix_bytes];
    fast.fill_bytes(&mut skip);
    slow.fill_bytes(&mut skip);
    // Rotate the schedule so every length gets to sit on every boundary
    // the earlier requests leave behind.
    for k in 0..AWKWARD_LENS.len() {
        let len = AWKWARD_LENS[(k + order) % AWKWARD_LENS.len()];
        let mut via_fill = vec![0u64; len];
        fast.fill_u64s(&mut via_fill);
        for (i, &w) in via_fill.iter().enumerate() {
            assert_eq!(
                w,
                slow.next_u64(),
                "len {len}, word {i}, prefix {prefix_bytes}"
            );
        }
    }
    // Both generators must resume the identical stream afterwards.
    assert_eq!(fast.next_u64(), slow.next_u64());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// ChaCha's whole-block `fill_u64s` equals repeated `next_u64` at
    /// awkward lengths, across block boundaries and unaligned starts.
    #[test]
    fn prop_chacha_fill_u64s_is_stream_equivalent(
        seed in any::<u64>(),
        prefix in 0usize..130,
        order in 0usize..5,
    ) {
        check_block_fill_matches_word_loop(ChaChaRng::from_u64_seed, seed, prefix, order);
    }

    /// Keccak's lane-filled `fill_u64s` equals repeated `next_u64` at
    /// awkward lengths, across rate boundaries and unaligned starts.
    #[test]
    fn prop_keccak_fill_u64s_is_stream_equivalent(
        seed in any::<u64>(),
        prefix in 0usize..280,
        order in 0usize..5,
    ) {
        check_block_fill_matches_word_loop(KeccakRng::from_u64_seed, seed, prefix, order);
    }
}
