//! Property tests for `SeedTree`: forked worker streams are disjoint
//! prefixes of independent SHAKE-256 expansions, and the derived ChaCha
//! streams never collide across workers.

use ctgauss_prng::{RandomSource, SeedTree, Shake, ShakeVariant};
use proptest::prelude::*;

/// The leaf-stream domain tag (kept in sync with `seedtree.rs`; the
/// prefix property below fails if they drift).
const STREAM_TAG: &[u8] = b"ctgauss.seedtree.stream.v1";
/// The epoch-stream domain tag (kept in sync with `seedtree.rs`).
const EPOCH_TAG: &[u8] = b"ctgauss.seedtree.epoch.v1";

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every forked stream seed is the 32-byte prefix of the SHAKE-256
    /// expansion of `root || tag || le64(index)`, recomputed here against
    /// the public XOF API — so the derivation is exactly the documented
    /// one, not merely *some* deterministic function.
    #[test]
    fn prop_fork_stream_is_shake_prefix(root in any::<u64>(), index in any::<u64>()) {
        let tree = SeedTree::from_u64_seed(root);
        let mut xof = Shake::new(ShakeVariant::Shake256);
        xof.absorb(tree.seed());
        xof.absorb(STREAM_TAG);
        xof.absorb(&index.to_le_bytes());
        let expansion = xof.finalize_squeeze(48);
        prop_assert_eq!(&tree.fork_stream(index)[..], &expansion[..32]);
    }

    /// Distinct worker indices yield disjoint streams: the seeds differ
    /// and the first ChaCha keystream words of the two workers differ
    /// (they are expansions of independent SHAKE outputs).
    #[test]
    fn prop_distinct_workers_get_disjoint_streams(
        root in any::<u64>(),
        i in 0u64..1024,
        j in 0u64..1024,
    ) {
        prop_assume!(i != j);
        let tree = SeedTree::from_u64_seed(root);
        prop_assert_ne!(tree.fork_stream(i), tree.fork_stream(j));
        let a: Vec<u64> = {
            let mut r = tree.fork_chacha(i);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = tree.fork_chacha(j);
            (0..8).map(|_| r.next_u64()).collect()
        };
        prop_assert_ne!(a, b);
    }

    /// Epoch 0 is exactly the canonical worker stream, and every epoch
    /// >= 1 is the 32-byte prefix of the SHAKE-256 expansion of
    /// `root || epoch-tag || le64(worker) || le64(epoch)` — the documented
    /// derivation, recomputed against the public XOF API.
    #[test]
    fn prop_fork_stream_epoch_is_shake_prefix(
        root in any::<u64>(),
        worker in any::<u64>(),
        epoch in 1u64..1024,
    ) {
        let tree = SeedTree::from_u64_seed(root);
        prop_assert_eq!(tree.fork_stream_epoch(worker, 0), tree.fork_stream(worker));
        let mut xof = Shake::new(ShakeVariant::Shake256);
        xof.absorb(tree.seed());
        xof.absorb(EPOCH_TAG);
        xof.absorb(&worker.to_le_bytes());
        xof.absorb(&epoch.to_le_bytes());
        let expansion = xof.finalize_squeeze(48);
        prop_assert_eq!(&tree.fork_stream_epoch(worker, epoch)[..], &expansion[..32]);
    }

    /// Distinct (worker, epoch) pairs yield pairwise-disjoint streams,
    /// and no epoch >= 1 stream ever collides with a plain worker stream
    /// — the resurrection contract: a replacement worker can neither
    /// replay its dead predecessor's randomness nor any sibling's.
    #[test]
    fn prop_epoch_streams_are_disjoint(
        root in any::<u64>(),
        w1 in 0u64..256,
        e1 in 0u64..64,
        w2 in 0u64..256,
        e2 in 0u64..64,
        probe in 0u64..256,
    ) {
        prop_assume!((w1, e1) != (w2, e2));
        let tree = SeedTree::from_u64_seed(root);
        prop_assert_ne!(
            tree.fork_stream_epoch(w1, e1),
            tree.fork_stream_epoch(w2, e2)
        );
        if e1 > 0 {
            prop_assert_ne!(tree.fork_stream_epoch(w1, e1), tree.fork_stream(probe));
            let a: Vec<u64> = {
                let mut r = tree.fork_chacha_epoch(w1, e1);
                (0..8).map(|_| r.next_u64()).collect()
            };
            let b: Vec<u64> = {
                let mut r = tree.fork_chacha(w1);
                (0..8).map(|_| r.next_u64()).collect()
            };
            prop_assert_ne!(a, b);
        }
    }

    /// Subtree forks are domain-separated from leaf forks and from each
    /// other: no (subtree, stream) path aliases another.
    #[test]
    fn prop_subtrees_are_domain_separated(
        root in any::<u64>(),
        s in 0u64..64,
        t in 0u64..64,
        leaf in 0u64..64,
    ) {
        prop_assume!(s != t);
        let tree = SeedTree::from_u64_seed(root);
        let sub_s = tree.fork_subtree(s);
        let sub_t = tree.fork_subtree(t);
        prop_assert_ne!(sub_s.fork_stream(leaf), sub_t.fork_stream(leaf));
        prop_assert_ne!(sub_s.fork_stream(leaf), tree.fork_stream(leaf));
        // A subtree seed itself never equals a stream seed at any probed
        // index (different domain tags).
        prop_assert_ne!(*sub_s.seed(), tree.fork_stream(s));
    }
}
