//! A wrapper that counts how much randomness a sampler consumes.

use crate::RandomSource;

/// Wraps a [`RandomSource`] and counts the bytes drawn through it.
///
/// The byte-scanning CDT sampler's advantage (Table 1 of the paper) comes
/// from drawing randomness lazily — usually a single byte per sample instead
/// of the full `n/8` bytes. This wrapper lets tests and the benchmark
/// harness measure that directly.
///
/// # Examples
///
/// ```
/// use ctgauss_prng::{CountingSource, RandomSource, SplitMix64};
///
/// let mut src = CountingSource::new(SplitMix64::new(1));
/// let _ = src.next_u64();
/// let _ = src.next_u8();
/// assert_eq!(src.bytes_drawn(), 9);
/// ```
#[derive(Debug, Clone)]
pub struct CountingSource<R> {
    inner: R,
    bytes: u64,
}

impl<R: RandomSource> CountingSource<R> {
    /// Wraps a source with a zeroed counter.
    pub fn new(inner: R) -> Self {
        CountingSource { inner, bytes: 0 }
    }

    /// Total bytes drawn so far.
    pub fn bytes_drawn(&self) -> u64 {
        self.bytes
    }

    /// Resets the counter to zero.
    pub fn reset(&mut self) {
        self.bytes = 0;
    }

    /// Returns the wrapped source.
    pub fn into_inner(self) -> R {
        self.inner
    }
}

impl<R: RandomSource> RandomSource for CountingSource<R> {
    fn fill_bytes(&mut self, dst: &mut [u8]) {
        self.bytes += dst.len() as u64;
        self.inner.fill_bytes(dst);
    }

    /// Forwards to the inner source's (possibly block-filled) override so
    /// the measured stream is identical to the unwrapped one, while still
    /// counting every byte drawn.
    fn fill_u64s(&mut self, dst: &mut [u64]) {
        self.bytes += 8 * dst.len() as u64;
        self.inner.fill_u64s(dst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SplitMix64;

    #[test]
    fn counts_every_path() {
        let mut src = CountingSource::new(SplitMix64::new(3));
        let mut buf = [0u8; 5];
        src.fill_bytes(&mut buf);
        let _ = src.next_u32();
        let _ = src.next_u64();
        assert_eq!(src.bytes_drawn(), 5 + 4 + 8);
        src.reset();
        assert_eq!(src.bytes_drawn(), 0);
    }

    #[test]
    fn counts_and_forwards_fill_u64s() {
        let mut src = CountingSource::new(SplitMix64::new(4));
        let mut words = [0u64; 5];
        src.fill_u64s(&mut words);
        assert_eq!(src.bytes_drawn(), 40);
        let mut plain = SplitMix64::new(4);
        let mut expected = [0u64; 5];
        plain.fill_u64s(&mut expected);
        assert_eq!(words, expected);
    }

    #[test]
    fn passthrough_preserves_stream() {
        let mut plain = SplitMix64::new(11);
        let mut counted = CountingSource::new(SplitMix64::new(11));
        for _ in 0..10 {
            assert_eq!(plain.next_u64(), counted.next_u64());
        }
    }
}
