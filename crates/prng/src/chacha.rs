//! The ChaCha20 stream cipher (RFC 8439), used as a PRNG.

use crate::RandomSource;

/// The ChaCha20 block function.
///
/// State layout per RFC 8439: four constant words, eight key words, one
/// block counter and three nonce words. [`block`](ChaCha20::block) produces
/// one 64-byte keystream block.
///
/// # Examples
///
/// ```
/// use ctgauss_prng::ChaCha20;
///
/// let cipher = ChaCha20::new(&[0u8; 32], &[0u8; 12]);
/// let block = cipher.block(0);
/// assert_eq!(block.len(), 64);
/// ```
#[derive(Debug, Clone)]
pub struct ChaCha20 {
    key: [u32; 8],
    nonce: [u32; 3],
}

const CHACHA_CONSTANTS: [u32; 4] = [0x61707865, 0x3320646e, 0x79622d32, 0x6b206574];

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

/// One ChaCha quarter-round over `N` independent blocks at once: `v[i]`
/// holds state word `i` of all `N` blocks, so every step is an `N`-lane
/// elementwise op (add / xor / rotate) that auto-vectorizes — to 128-bit
/// registers at `N = 4` on the x86_64 baseline, and to 256-bit registers
/// at `N = 8` when compiled under the AVX2 shim of
/// [`ChaCha20::eight_blocks_u64s`].
#[inline(always)]
fn quarter_round_xn<const N: usize>(
    v: &mut [[u32; N]; 16],
    a: usize,
    b: usize,
    c: usize,
    d: usize,
) {
    #[inline(always)]
    fn add<const N: usize>(x: [u32; N], y: [u32; N]) -> [u32; N] {
        let mut o = [0; N];
        for l in 0..N {
            o[l] = x[l].wrapping_add(y[l]);
        }
        o
    }
    #[inline(always)]
    fn xor_rot<const N: usize, const R: u32>(x: [u32; N], y: [u32; N]) -> [u32; N] {
        let mut o = [0; N];
        for l in 0..N {
            o[l] = (x[l] ^ y[l]).rotate_left(R);
        }
        o
    }
    v[a] = add(v[a], v[b]);
    v[d] = xor_rot::<N, 16>(v[d], v[a]);
    v[c] = add(v[c], v[d]);
    v[b] = xor_rot::<N, 12>(v[b], v[c]);
    v[a] = add(v[a], v[b]);
    v[d] = xor_rot::<N, 8>(v[d], v[a]);
    v[c] = add(v[c], v[d]);
    v[b] = xor_rot::<N, 7>(v[b], v[c]);
}

impl ChaCha20 {
    /// Creates a cipher instance from a 256-bit key and 96-bit nonce.
    pub fn new(key: &[u8; 32], nonce: &[u8; 12]) -> Self {
        let mut k = [0u32; 8];
        for (i, w) in k.iter_mut().enumerate() {
            *w = u32::from_le_bytes(key[4 * i..4 * i + 4].try_into().expect("4-byte chunk"));
        }
        let mut n = [0u32; 3];
        for (i, w) in n.iter_mut().enumerate() {
            *w = u32::from_le_bytes(nonce[4 * i..4 * i + 4].try_into().expect("4-byte chunk"));
        }
        ChaCha20 { key: k, nonce: n }
    }

    /// Produces the keystream block for the given counter value as eight
    /// little-endian `u64` words — the allocation-free fast path behind
    /// [`RandomSource::fill_u64s`], byte-identical to [`block`](Self::block).
    pub fn block_u64s(&self, counter: u32) -> [u64; 8] {
        let bytes = self.block(counter);
        let mut out = [0u64; 8];
        for (i, w) in out.iter_mut().enumerate() {
            *w = u64::from_le_bytes(bytes[8 * i..8 * i + 8].try_into().expect("8-byte chunk"));
        }
        out
    }

    /// The initial (pre-rounds) state for a given counter.
    fn initial_state(&self, counter: u32) -> [u32; 16] {
        let mut state = [0u32; 16];
        state[0..4].copy_from_slice(&CHACHA_CONSTANTS);
        state[4..12].copy_from_slice(&self.key);
        state[12] = counter;
        state[13..16].copy_from_slice(&self.nonce);
        state
    }

    /// Runs the four consecutive blocks `counter .. counter + 4` together:
    /// the state is assembled once and kept in structure-of-arrays form —
    /// state word `i` of all four (independent) blocks lives in one
    /// `[u32; 4]` lane vector, so each quarter-round step is four lanes
    /// of the same elementwise op and the compiler lowers it to vector
    /// instructions. Byte-identical to four [`block`](Self::block) calls
    /// with wrapping counter increments.
    fn four_states(&self, counter: u32) -> [[u32; 16]; 4] {
        self.wide_states::<4>(counter)
    }

    /// Runs the `N` consecutive blocks `counter .. counter + N` together
    /// in structure-of-arrays form — the width-generic engine behind
    /// [`four_blocks`](Self::four_blocks) (`N = 4`) and
    /// [`eight_blocks_u64s`](Self::eight_blocks_u64s) (`N = 8`).
    /// Byte-identical to `N` single [`block`](Self::block) calls with
    /// wrapping counter increments.
    #[inline(always)]
    fn wide_states<const N: usize>(&self, counter: u32) -> [[u32; 16]; N] {
        let base = self.initial_state(counter);
        let mut v: [[u32; N]; 16] = [[0; N]; 16];
        for (i, lane) in v.iter_mut().enumerate() {
            *lane = [base[i]; N];
        }
        for (k, w) in v[12].iter_mut().enumerate() {
            *w = counter.wrapping_add(k as u32);
        }
        let initial = v;
        for _ in 0..10 {
            // Column rounds, each quarter-round across all N blocks.
            quarter_round_xn(&mut v, 0, 4, 8, 12);
            quarter_round_xn(&mut v, 1, 5, 9, 13);
            quarter_round_xn(&mut v, 2, 6, 10, 14);
            quarter_round_xn(&mut v, 3, 7, 11, 15);
            // Diagonal rounds.
            quarter_round_xn(&mut v, 0, 5, 10, 15);
            quarter_round_xn(&mut v, 1, 6, 11, 12);
            quarter_round_xn(&mut v, 2, 7, 8, 13);
            quarter_round_xn(&mut v, 3, 4, 9, 14);
        }
        let mut states = [[0u32; 16]; N];
        for i in 0..16 {
            for (k, state) in states.iter_mut().enumerate() {
                state[i] = v[i][k].wrapping_add(initial[i][k]);
            }
        }
        states
    }

    /// Collapses `N` post-rounds states into little-endian `u64` words,
    /// eight per block.
    #[inline(always)]
    fn states_to_u64s<const N: usize>(states: &[[u32; 16]; N], out: &mut [u64]) {
        for (k, state) in states.iter().enumerate() {
            for j in 0..8 {
                out[8 * k + j] = u64::from(state[2 * j]) | (u64::from(state[2 * j + 1]) << 32);
            }
        }
    }

    /// Four consecutive keystream blocks (`counter .. counter + 4`) as 256
    /// bytes — the batched refill path of [`ChaChaRng`].
    pub fn four_blocks(&self, counter: u32) -> [u8; 256] {
        let states = self.four_states(counter);
        let mut out = [0u8; 256];
        for (k, state) in states.iter().enumerate() {
            for (i, w) in state.iter().enumerate() {
                out[64 * k + 4 * i..64 * k + 4 * i + 4].copy_from_slice(&w.to_le_bytes());
            }
        }
        out
    }

    /// Four consecutive keystream blocks as 32 little-endian `u64` words —
    /// a bulk path of [`RandomSource::fill_u64s`], byte-identical to
    /// four [`block_u64s`](Self::block_u64s) calls.
    pub fn four_blocks_u64s(&self, counter: u32) -> [u64; 32] {
        let states = self.four_states(counter);
        let mut out = [0u64; 32];
        Self::states_to_u64s(&states, &mut out);
        out
    }

    /// Eight consecutive keystream blocks as 64 little-endian `u64`
    /// words — the widest bulk path of [`RandomSource::fill_u64s`],
    /// byte-identical to eight [`block_u64s`](Self::block_u64s) calls.
    ///
    /// On x86_64 machines with AVX2 the eight-lane round loop is compiled
    /// under a `#[target_feature(enable = "avx2")]` shim (selected once
    /// per call by cached runtime detection), so the structure-of-arrays
    /// quarter-rounds lower to 256-bit register ops; everywhere else the
    /// same portable code runs under the baseline instruction set. Both
    /// paths produce the identical byte stream — vectorization changes
    /// how blocks are computed, never what they contain.
    pub fn eight_blocks_u64s(&self, counter: u32) -> [u64; 64] {
        #[cfg(target_arch = "x86_64")]
        if let Some(out) = vectored::eight_blocks_u64s(self, counter) {
            return out;
        }
        self.eight_blocks_u64s_portable(counter)
    }

    /// The portable eight-block body; also the code the AVX2 shim
    /// compiles under its wider instruction set.
    #[inline(always)]
    fn eight_blocks_u64s_portable(&self, counter: u32) -> [u64; 64] {
        let states = self.wide_states::<8>(counter);
        let mut out = [0u64; 64];
        Self::states_to_u64s(&states, &mut out);
        out
    }

    /// Produces the 64-byte keystream block for the given counter value.
    pub fn block(&self, counter: u32) -> [u8; 64] {
        let mut state = self.initial_state(counter);
        let initial = state;

        for _ in 0..10 {
            // Column rounds.
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            // Diagonal rounds.
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        let mut out = [0u8; 64];
        for i in 0..16 {
            let word = state[i].wrapping_add(initial[i]);
            out[4 * i..4 * i + 4].copy_from_slice(&word.to_le_bytes());
        }
        out
    }
}

/// The AVX2 execution shim for the eight-block refill. Isolated in its
/// own module so the `unsafe` surface of this crate stays at exactly one
/// function: the `#[target_feature]` wrapper whose body is the portable
/// code, recompiled with 256-bit registers enabled.
#[cfg(target_arch = "x86_64")]
#[allow(unsafe_code)]
mod vectored {
    use super::ChaCha20;

    /// The runtime-dispatched entry: `Some` with the eight blocks when
    /// the CPU has AVX2 (computed under the shim), `None` otherwise.
    #[inline]
    pub(super) fn eight_blocks_u64s(cipher: &ChaCha20, counter: u32) -> Option<[u64; 64]> {
        if std::arch::is_x86_feature_detected!("avx2") {
            // SAFETY: AVX2 availability was just verified at runtime
            // (the detection result is cached by std after first use).
            Some(unsafe { eight_blocks_u64s_avx2(cipher, counter) })
        } else {
            None
        }
    }

    /// # Safety
    ///
    /// The caller must verify AVX2 availability at runtime
    /// (`is_x86_feature_detected!("avx2")`) before calling.
    #[target_feature(enable = "avx2")]
    fn eight_blocks_u64s_avx2(cipher: &ChaCha20, counter: u32) -> [u64; 64] {
        cipher.eight_blocks_u64s_portable(counter)
    }
}

/// Bytes buffered per [`ChaChaRng`] refill: four 64-byte keystream blocks
/// generated together (one state load, four counter increments).
const REFILL_BYTES: usize = 256;

/// A PRNG backed by the ChaCha20 keystream, as in the Falcon reference
/// implementation and the paper's Table 1 measurements.
///
/// Refills generate four consecutive blocks per call
/// ([`ChaCha20::four_blocks`]), which interleaves the four independent
/// block computations; the byte stream is exactly the single-block
/// stream, just produced in larger strides.
///
/// # Examples
///
/// ```
/// use ctgauss_prng::{ChaChaRng, RandomSource};
///
/// let mut a = ChaChaRng::from_seed([1u8; 32]);
/// let mut b = ChaChaRng::from_seed([1u8; 32]);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone)]
pub struct ChaChaRng {
    cipher: ChaCha20,
    counter: u32,
    buf: [u8; REFILL_BYTES],
    pos: usize,
}

impl ChaChaRng {
    /// Creates a generator from a 256-bit seed (zero nonce, counter 0).
    pub fn from_seed(seed: [u8; 32]) -> Self {
        ChaChaRng {
            cipher: ChaCha20::new(&seed, &[0u8; 12]),
            counter: 0,
            buf: [0u8; REFILL_BYTES],
            pos: REFILL_BYTES,
        }
    }

    /// Creates a generator from a 64-bit convenience seed (expanded into the
    /// key by repetition with a counter mixed in).
    pub fn from_u64_seed(seed: u64) -> Self {
        let mut key = [0u8; 32];
        for (i, chunk) in key.chunks_exact_mut(8).enumerate() {
            chunk.copy_from_slice(&(seed.wrapping_add(i as u64)).to_le_bytes());
        }
        Self::from_seed(key)
    }

    fn refill(&mut self) {
        self.buf = self.cipher.four_blocks(self.counter);
        self.counter = self.counter.wrapping_add(4);
        self.pos = 0;
    }
}

impl RandomSource for ChaChaRng {
    fn fill_bytes(&mut self, dst: &mut [u8]) {
        let mut written = 0;
        while written < dst.len() {
            if self.pos == REFILL_BYTES {
                self.refill();
            }
            let n = (dst.len() - written).min(REFILL_BYTES - self.pos);
            dst[written..written + n].copy_from_slice(&self.buf[self.pos..self.pos + n]);
            self.pos += n;
            written += n;
        }
    }

    /// Block-filled override: whole keystream blocks are converted to
    /// `u64` words straight into the destination — 32 words per
    /// four-block batch while the request is long, 8 per single block for
    /// the tail — bypassing the byte staging buffer for the bulk of the
    /// request. Stream-equivalent to the default byte-at-a-time
    /// implementation (see the trait contract).
    fn fill_u64s(&mut self, dst: &mut [u64]) {
        let mut i = 0;
        // Drain whatever is left of the buffered blocks first so the byte
        // stream stays continuous.
        while i < dst.len() && self.pos < REFILL_BYTES {
            if self.pos + 8 <= REFILL_BYTES {
                dst[i] = u64::from_le_bytes(
                    self.buf[self.pos..self.pos + 8]
                        .try_into()
                        .expect("8-byte chunk"),
                );
                self.pos += 8;
            } else {
                // A word straddling the buffer boundary: take the byte path.
                dst[i] = self.next_u64();
            }
            i += 1;
        }
        // Eight whole blocks at a time straight into the destination —
        // the vectorized refill (AVX2 where the CPU has it, portable
        // structure-of-arrays otherwise; identical bytes either way).
        while dst.len() - i >= 64 {
            dst[i..i + 64].copy_from_slice(&self.cipher.eight_blocks_u64s(self.counter));
            self.counter = self.counter.wrapping_add(8);
            i += 64;
        }
        // Four whole blocks at a time: one state load and four
        // interleaved block computations per call.
        while dst.len() - i >= 32 {
            dst[i..i + 32].copy_from_slice(&self.cipher.four_blocks_u64s(self.counter));
            self.counter = self.counter.wrapping_add(4);
            i += 32;
        }
        // Whole single blocks: 8 words per block function call.
        while dst.len() - i >= 8 {
            dst[i..i + 8].copy_from_slice(&self.cipher.block_u64s(self.counter));
            self.counter = self.counter.wrapping_add(1);
            i += 8;
        }
        // Tail shorter than a block: refill the buffer as usual.
        for w in &mut dst[i..] {
            *w = self.next_u64();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// RFC 8439 section 2.3.2: key = 00..1f, nonce = 00 00 00 09 00 00 00 4a
    /// 00 00 00 00, counter = 1.
    #[test]
    fn rfc8439_block_test_vector() {
        let mut key = [0u8; 32];
        for (i, b) in key.iter_mut().enumerate() {
            *b = i as u8;
        }
        let nonce = [0u8, 0, 0, 9, 0, 0, 0, 0x4a, 0, 0, 0, 0];
        let cipher = ChaCha20::new(&key, &nonce);
        let block = cipher.block(1);
        let expected: [u8; 64] = [
            0x10, 0xf1, 0xe7, 0xe4, 0xd1, 0x3b, 0x59, 0x15, 0x50, 0x0f, 0xdd, 0x1f, 0xa3, 0x20,
            0x71, 0xc4, 0xc7, 0xd1, 0xf4, 0xc7, 0x33, 0xc0, 0x68, 0x03, 0x04, 0x22, 0xaa, 0x9a,
            0xc3, 0xd4, 0x6c, 0x4e, 0xd2, 0x82, 0x64, 0x46, 0x07, 0x9f, 0xaa, 0x09, 0x14, 0xc2,
            0xd7, 0x05, 0xd9, 0x8b, 0x02, 0xa2, 0xb5, 0x12, 0x9c, 0xd1, 0xde, 0x16, 0x4e, 0xb9,
            0xcb, 0xd0, 0x83, 0xe8, 0xa2, 0x50, 0x3c, 0x4e,
        ];
        assert_eq!(block, expected);
    }

    /// RFC 8439 section 2.4.2 keystream (encrypting the known plaintext and
    /// comparing to the ciphertext of the RFC exercises blocks 1 and 2).
    #[test]
    fn rfc8439_encryption_test_vector() {
        let mut key = [0u8; 32];
        for (i, b) in key.iter_mut().enumerate() {
            *b = i as u8;
        }
        let nonce = [0u8, 0, 0, 0, 0, 0, 0, 0x4a, 0, 0, 0, 0];
        let cipher = ChaCha20::new(&key, &nonce);
        let plaintext = b"Ladies and Gentlemen of the class of '99: If I could offer you only one tip for the future, sunscreen would be it.";
        let mut keystream = Vec::new();
        let mut counter = 1;
        while keystream.len() < plaintext.len() {
            keystream.extend_from_slice(&cipher.block(counter));
            counter += 1;
        }
        let ciphertext: Vec<u8> = plaintext
            .iter()
            .zip(&keystream)
            .map(|(p, k)| p ^ k)
            .collect();
        let expected_prefix: [u8; 16] = [
            0x6e, 0x2e, 0x35, 0x9a, 0x25, 0x68, 0xf9, 0x80, 0x41, 0xba, 0x07, 0x28, 0xdd, 0x0d,
            0x69, 0x81,
        ];
        assert_eq!(&ciphertext[..16], &expected_prefix);
        let expected_suffix: [u8; 8] = [0x8e, 0xed, 0xf2, 0x78, 0x5e, 0x42, 0x87, 0x4d];
        assert_eq!(&ciphertext[ciphertext.len() - 8..], &expected_suffix);
    }

    #[test]
    fn rng_streams_across_block_boundaries() {
        let mut rng = ChaChaRng::from_seed([3u8; 32]);
        let mut all = vec![0u8; 200];
        rng.fill_bytes(&mut all);
        // Same bytes drawn one at a time.
        let mut rng2 = ChaChaRng::from_seed([3u8; 32]);
        for (i, &expected) in all.iter().enumerate() {
            assert_eq!(rng2.next_u8(), expected, "byte {i}");
        }
    }

    /// The block-filled `fill_u64s` must be stream-equivalent to the
    /// default byte-wise implementation, including when the request starts
    /// mid-block, crosses single-block and four-block boundaries, or
    /// starts at an unaligned byte position. Word counts around 32 and
    /// byte offsets around 256 exercise the four-block batch path's edges.
    #[test]
    fn fill_u64s_matches_byte_stream() {
        for (pre_bytes, words) in [
            (0usize, 40usize),
            (8, 17),
            (3, 20),
            (61, 9),
            (64, 8),
            (5, 1),
            (0, 31),
            (0, 32),
            (0, 33),
            (0, 64),
            (0, 100),
            (16, 32),
            (250, 10),
            (255, 40),
            (256, 32),
            (259, 36),
            (511, 5),
            (512, 64),
        ] {
            let mut fast = ChaChaRng::from_seed([9u8; 32]);
            let mut slow = ChaChaRng::from_seed([9u8; 32]);
            let mut skip = vec![0u8; pre_bytes];
            fast.fill_bytes(&mut skip);
            slow.fill_bytes(&mut skip);
            let mut via_fill = vec![0u64; words];
            fast.fill_u64s(&mut via_fill);
            let via_next: Vec<u64> = (0..words).map(|_| slow.next_u64()).collect();
            assert_eq!(via_fill, via_next, "pre_bytes={pre_bytes}, words={words}");
            // Both generators must resume the same stream afterwards.
            assert_eq!(fast.next_u64(), slow.next_u64(), "pre_bytes={pre_bytes}");
        }
    }

    #[test]
    fn block_u64s_matches_block_bytes() {
        let cipher = ChaCha20::new(&[0x42u8; 32], &[7u8; 12]);
        let words = cipher.block_u64s(3);
        let bytes = cipher.block(3);
        for (i, &w) in words.iter().enumerate() {
            assert_eq!(
                w,
                u64::from_le_bytes(bytes[8 * i..8 * i + 8].try_into().unwrap())
            );
        }
    }

    /// The interleaved four-block batch is byte-identical to four
    /// independent block calls with wrapping counter increments.
    #[test]
    fn four_blocks_match_single_blocks() {
        let cipher = ChaCha20::new(&[0x5au8; 32], &[3u8; 12]);
        for counter in [0u32, 1, 1000, u32::MAX - 1] {
            let batch = cipher.four_blocks(counter);
            let words = cipher.four_blocks_u64s(counter);
            for k in 0..4u32 {
                let single = cipher.block(counter.wrapping_add(k));
                let base = 64 * k as usize;
                assert_eq!(
                    &batch[base..base + 64],
                    &single[..],
                    "counter {counter}+{k}"
                );
                let single_words = cipher.block_u64s(counter.wrapping_add(k));
                assert_eq!(
                    &words[8 * k as usize..8 * k as usize + 8],
                    &single_words[..],
                    "counter {counter}+{k}"
                );
            }
        }
    }

    /// The vectorized eight-block batch is byte-identical to eight
    /// independent block calls with wrapping counter increments —
    /// whichever engine (AVX2 shim or portable) the host dispatches to.
    #[test]
    fn eight_blocks_match_single_blocks() {
        let cipher = ChaCha20::new(&[0xa7u8; 32], &[11u8; 12]);
        for counter in [0u32, 1, 77, u32::MAX - 3] {
            let words = cipher.eight_blocks_u64s(counter);
            let portable = cipher.eight_blocks_u64s_portable(counter);
            assert_eq!(words, portable, "dispatched vs portable, counter {counter}");
            for k in 0..8u32 {
                let single = cipher.block_u64s(counter.wrapping_add(k));
                assert_eq!(
                    &words[8 * k as usize..8 * k as usize + 8],
                    &single[..],
                    "counter {counter}+{k}"
                );
            }
        }
    }

    /// The vectorized-refill generator must be byte-stream-identical to
    /// the scalar (one `next_u8` at a time) generator at request lengths
    /// bracketing every block, four-block and eight-block boundary.
    #[test]
    fn vectorized_byte_stream_matches_scalar_at_boundary_lengths() {
        for len in [1usize, 63, 64, 65, 255, 256, 257, 511, 512, 513, 1000] {
            let mut fast = ChaChaRng::from_seed([0x2cu8; 32]);
            let mut buf = vec![0u8; len];
            fast.fill_bytes(&mut buf);
            let mut slow = ChaChaRng::from_seed([0x2cu8; 32]);
            for (i, &expected) in buf.iter().enumerate() {
                assert_eq!(slow.next_u8(), expected, "len {len}, byte {i}");
            }
            // Both generators must resume the same stream afterwards.
            assert_eq!(fast.next_u64(), slow.next_u64(), "len {len}, resume");
        }
    }

    /// `fill_u64s` boundary matrix around the eight-block (64-word) bulk
    /// path: word counts bracketing 64 and 128, from byte offsets
    /// bracketing the 256-byte buffered refill — every edge where the
    /// vectorized path hands over to the narrower loops.
    #[test]
    fn fill_u64s_eight_block_refill_edges_match_byte_stream() {
        for (pre_bytes, words) in [
            (0usize, 63usize),
            (0, 64),
            (0, 65),
            (0, 96),
            (0, 127),
            (0, 128),
            (0, 129),
            (0, 1000),
            (8, 64),
            (61, 65),
            (255, 64),
            (256, 128),
            (257, 65),
            (511, 129),
        ] {
            let mut fast = ChaChaRng::from_seed([0x71u8; 32]);
            let mut slow = ChaChaRng::from_seed([0x71u8; 32]);
            let mut skip = vec![0u8; pre_bytes];
            fast.fill_bytes(&mut skip);
            slow.fill_bytes(&mut skip);
            let mut via_fill = vec![0u64; words];
            fast.fill_u64s(&mut via_fill);
            let via_next: Vec<u64> = (0..words).map(|_| slow.next_u64()).collect();
            assert_eq!(via_fill, via_next, "pre_bytes={pre_bytes}, words={words}");
            assert_eq!(fast.next_u64(), slow.next_u64(), "pre_bytes={pre_bytes}");
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = ChaChaRng::from_u64_seed(1);
        let mut b = ChaChaRng::from_u64_seed(2);
        let va: Vec<u64> = (0..4).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..4).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }
}
