//! The Keccak-f\[1600\] permutation, SHAKE XOFs and a Keccak-based PRNG.

use crate::RandomSource;

/// Round constants for Keccak-f\[1600\] (computed from the LFSR definition in
/// FIPS 202 at first use; cached thereafter).
fn round_constants() -> [u64; 24] {
    // rc(t) LFSR over GF(2): x^8 + x^6 + x^5 + x^4 + 1.
    let mut lfsr = 1u8;
    let mut rc_bit = |_t: usize| -> bool {
        let bit = lfsr & 1 == 1;
        let msb = lfsr & 0x80 != 0;
        lfsr <<= 1;
        if msb {
            lfsr ^= 0x71; // x^8 reduced: x^6 + x^5 + x^4 + 1
        }
        bit
    };
    let mut out = [0u64; 24];
    for (ir, rc) in out.iter_mut().enumerate() {
        let _ = ir;
        let mut word = 0u64;
        for j in 0..7 {
            if rc_bit(j) {
                word |= 1u64 << ((1usize << j) - 1);
            }
        }
        *rc = word;
    }
    out
}

/// Rotation offsets (rho step), indexed `[x][y]`.
const RHO: [[u32; 5]; 5] = [
    [0, 36, 3, 41, 18],
    [1, 44, 10, 45, 2],
    [62, 6, 43, 15, 61],
    [28, 55, 25, 21, 56],
    [27, 20, 39, 8, 14],
];

/// The Keccak-f\[1600\] permutation state: 25 lanes of 64 bits, indexed
/// `lane[x + 5*y]`.
///
/// # Examples
///
/// ```
/// use ctgauss_prng::KeccakF1600;
///
/// let mut st = KeccakF1600::new();
/// st.permute();
/// assert_ne!(st.lanes()[0], 0); // permutation of all-zero state is non-zero
/// ```
#[derive(Debug, Clone)]
pub struct KeccakF1600 {
    lanes: [u64; 25],
    constants: [u64; 24],
}

impl Default for KeccakF1600 {
    fn default() -> Self {
        Self::new()
    }
}

impl KeccakF1600 {
    /// Creates an all-zero state.
    pub fn new() -> Self {
        KeccakF1600 {
            lanes: [0; 25],
            constants: round_constants(),
        }
    }

    /// Read-only view of the 25 lanes.
    pub fn lanes(&self) -> &[u64; 25] {
        &self.lanes
    }

    /// XORs a byte slice into the state starting at lane byte offset 0.
    pub fn absorb_bytes(&mut self, data: &[u8]) {
        for (i, &b) in data.iter().enumerate() {
            self.lanes[i / 8] ^= u64::from(b) << (8 * (i % 8));
        }
    }

    /// Extracts `n` bytes from the beginning of the state.
    pub fn squeeze_bytes(&self, n: usize, out: &mut Vec<u8>) {
        self.extract_bytes(0, n, out);
    }

    /// Extracts `n` bytes starting at byte `offset` of the state.
    pub fn extract_bytes(&self, offset: usize, n: usize, out: &mut Vec<u8>) {
        for i in offset..offset + n {
            out.push((self.lanes[i / 8] >> (8 * (i % 8))) as u8);
        }
    }

    /// Extracts `out.len()` bytes starting at byte `offset` of the state
    /// into a caller-provided buffer (the allocation-free counterpart of
    /// [`extract_bytes`](Self::extract_bytes)).
    pub fn extract_into(&self, offset: usize, out: &mut [u8]) {
        for (k, b) in out.iter_mut().enumerate() {
            let i = offset + k;
            *b = (self.lanes[i / 8] >> (8 * (i % 8))) as u8;
        }
    }

    /// Applies the 24-round Keccak-f\[1600\] permutation.
    pub fn permute(&mut self) {
        let a = &mut self.lanes;
        for round in 0..24 {
            // Theta.
            let mut c = [0u64; 5];
            for x in 0..5 {
                c[x] = a[x] ^ a[x + 5] ^ a[x + 10] ^ a[x + 15] ^ a[x + 20];
            }
            let mut d = [0u64; 5];
            for x in 0..5 {
                d[x] = c[(x + 4) % 5] ^ c[(x + 1) % 5].rotate_left(1);
            }
            for x in 0..5 {
                for y in 0..5 {
                    a[x + 5 * y] ^= d[x];
                }
            }
            // Rho and pi.
            let mut b = [0u64; 25];
            for x in 0..5 {
                for y in 0..5 {
                    let nx = y;
                    let ny = (2 * x + 3 * y) % 5;
                    b[nx + 5 * ny] = a[x + 5 * y].rotate_left(RHO[x][y]);
                }
            }
            // Chi.
            for x in 0..5 {
                for y in 0..5 {
                    a[x + 5 * y] =
                        b[x + 5 * y] ^ (!b[(x + 1) % 5 + 5 * y] & b[(x + 2) % 5 + 5 * y]);
                }
            }
            // Iota.
            a[0] ^= self.constants[round];
        }
    }
}

/// Which SHAKE extendable-output function to instantiate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ShakeVariant {
    /// SHAKE-128 (rate 168 bytes).
    Shake128,
    /// SHAKE-256 (rate 136 bytes).
    Shake256,
}

impl ShakeVariant {
    fn rate(self) -> usize {
        match self {
            ShakeVariant::Shake128 => 168,
            ShakeVariant::Shake256 => 136,
        }
    }
}

/// An incremental SHAKE XOF (FIPS 202).
///
/// # Examples
///
/// ```
/// use ctgauss_prng::{Shake, ShakeVariant};
///
/// let mut xof = Shake::new(ShakeVariant::Shake128);
/// xof.absorb(b"");
/// let out = xof.finalize_squeeze(4);
/// assert_eq!(out, vec![0x7f, 0x9c, 0x2b, 0xa4]);
/// ```
#[derive(Debug, Clone)]
pub struct Shake {
    state: KeccakF1600,
    variant: ShakeVariant,
    buffer: Vec<u8>,
    squeezing: bool,
    squeeze_pos: usize,
}

impl Shake {
    /// Creates an empty XOF of the given variant.
    pub fn new(variant: ShakeVariant) -> Self {
        Shake {
            state: KeccakF1600::new(),
            variant,
            buffer: Vec::new(),
            squeezing: false,
            squeeze_pos: 0,
        }
    }

    /// Absorbs message bytes.
    ///
    /// # Panics
    ///
    /// Panics if called after squeezing has started.
    pub fn absorb(&mut self, data: &[u8]) {
        assert!(!self.squeezing, "cannot absorb after squeezing started");
        self.buffer.extend_from_slice(data);
        let rate = self.variant.rate();
        while self.buffer.len() >= rate {
            let block: Vec<u8> = self.buffer.drain(..rate).collect();
            self.state.absorb_bytes(&block);
            self.state.permute();
        }
    }

    fn pad_and_switch(&mut self) {
        let rate = self.variant.rate();
        // SHAKE domain separation + pad10*1: append 0x1F, pad zeros, set top
        // bit of the final rate byte.
        let mut block = core::mem::take(&mut self.buffer);
        block.push(0x1f);
        block.resize(rate, 0);
        block[rate - 1] |= 0x80;
        self.state.absorb_bytes(&block);
        self.state.permute();
        self.squeezing = true;
        self.squeeze_pos = 0;
    }

    /// Squeezes `n` more output bytes (finalizing on first call).
    pub fn squeeze(&mut self, n: usize) -> Vec<u8> {
        let mut out = vec![0u8; n];
        self.squeeze_into(&mut out);
        out
    }

    /// Squeezes `dst.len()` more output bytes into a caller-provided
    /// buffer, finalizing on first call — the allocation-free counterpart
    /// of [`squeeze`](Self::squeeze).
    pub fn squeeze_into(&mut self, dst: &mut [u8]) {
        if !self.squeezing {
            self.pad_and_switch();
        }
        let rate = self.variant.rate();
        let mut filled = 0;
        while filled < dst.len() {
            if self.squeeze_pos == rate {
                self.state.permute();
                self.squeeze_pos = 0;
            }
            let take = (dst.len() - filled).min(rate - self.squeeze_pos);
            self.state
                .extract_into(self.squeeze_pos, &mut dst[filled..filled + take]);
            self.squeeze_pos += take;
            filled += take;
        }
    }

    /// Squeezes `dst.len()` more little-endian `u64` words, reading whole
    /// state lanes when the squeeze position is 8-byte aligned (it always
    /// is unless a caller previously drew a non-multiple-of-8 byte count:
    /// both SHAKE rates are lane-aligned). Stream-equivalent to squeezing
    /// `8 * dst.len()` bytes.
    pub fn squeeze_u64s_into(&mut self, dst: &mut [u64]) {
        if !self.squeezing {
            self.pad_and_switch();
        }
        let rate = self.variant.rate();
        for w in dst.iter_mut() {
            if self.squeeze_pos == rate {
                self.state.permute();
                self.squeeze_pos = 0;
            }
            if self.squeeze_pos.is_multiple_of(8) && rate - self.squeeze_pos >= 8 {
                // Lane-aligned: the next 8 stream bytes are exactly one
                // little-endian state lane.
                *w = self.state.lanes[self.squeeze_pos / 8];
                self.squeeze_pos += 8;
            } else {
                let mut b = [0u8; 8];
                self.squeeze_into(&mut b);
                *w = u64::from_le_bytes(b);
            }
        }
    }

    /// One-shot convenience: finalizes and squeezes `n` bytes.
    pub fn finalize_squeeze(mut self, n: usize) -> Vec<u8> {
        self.squeeze(n)
    }
}

/// A PRNG that squeezes an endless SHAKE-256 stream from a seed, standing in
/// for the Keccak-based generator of the prior work (IEEE TC 2018).
///
/// # Examples
///
/// ```
/// use ctgauss_prng::{KeccakRng, RandomSource};
///
/// let mut rng = KeccakRng::from_seed(b"seed material");
/// let _ = rng.next_u64();
/// ```
#[derive(Debug, Clone)]
pub struct KeccakRng {
    xof: Shake,
}

impl KeccakRng {
    /// Creates a generator from arbitrary seed bytes.
    pub fn from_seed(seed: &[u8]) -> Self {
        let mut xof = Shake::new(ShakeVariant::Shake256);
        xof.absorb(seed);
        KeccakRng { xof }
    }

    /// Creates a generator from a 64-bit convenience seed.
    pub fn from_u64_seed(seed: u64) -> Self {
        Self::from_seed(&seed.to_le_bytes())
    }
}

impl RandomSource for KeccakRng {
    fn fill_bytes(&mut self, dst: &mut [u8]) {
        self.xof.squeeze_into(dst);
    }

    /// Block-filled override: words come straight from the Keccak state
    /// lanes (17 per SHAKE-256 block), with no byte staging. Stream-
    /// equivalent to the default implementation (see the trait contract).
    fn fill_u64s(&mut self, dst: &mut [u64]) {
        self.xof.squeeze_u64s_into(dst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    #[test]
    fn round_constants_match_fips202() {
        let rc = round_constants();
        assert_eq!(rc[0], 0x0000000000000001);
        assert_eq!(rc[1], 0x0000000000008082);
        assert_eq!(rc[2], 0x800000000000808a);
        assert_eq!(rc[3], 0x8000000080008000);
        assert_eq!(rc[21], 0x8000000000008080);
        assert_eq!(rc[22], 0x0000000080000001);
        assert_eq!(rc[23], 0x8000000080008008);
    }

    #[test]
    fn shake128_empty_message() {
        let mut xof = Shake::new(ShakeVariant::Shake128);
        xof.absorb(b"");
        let out = xof.finalize_squeeze(32);
        assert_eq!(
            hex(&out),
            "7f9c2ba4e88f827d616045507605853ed73b8093f6efbc88eb1a6eacfa66ef26"
        );
    }

    #[test]
    fn shake256_empty_message() {
        let mut xof = Shake::new(ShakeVariant::Shake256);
        xof.absorb(b"");
        let out = xof.finalize_squeeze(32);
        assert_eq!(
            hex(&out),
            "46b9dd2b0ba88d13233b3feb743eeb243fcd52ea62b81b82b50c27646ed5762f"
        );
    }

    #[test]
    fn shake128_abc() {
        let mut xof = Shake::new(ShakeVariant::Shake128);
        xof.absorb(b"abc");
        let out = xof.finalize_squeeze(16);
        assert_eq!(hex(&out), "5881092dd818bf5cf8a3ddb793fbcba7");
    }

    #[test]
    fn incremental_absorb_matches_oneshot() {
        let mut a = Shake::new(ShakeVariant::Shake256);
        a.absorb(b"hello ");
        a.absorb(b"world");
        let mut b = Shake::new(ShakeVariant::Shake256);
        b.absorb(b"hello world");
        assert_eq!(a.finalize_squeeze(64), b.finalize_squeeze(64));
    }

    #[test]
    fn incremental_squeeze_matches_oneshot() {
        let mut a = Shake::new(ShakeVariant::Shake128);
        a.absorb(b"stream me");
        let mut out = a.squeeze(10);
        out.extend(a.squeeze(300)); // crosses a rate boundary
        let mut b = Shake::new(ShakeVariant::Shake128);
        b.absorb(b"stream me");
        assert_eq!(out, b.finalize_squeeze(310));
    }

    #[test]
    fn long_message_crosses_rate_boundary() {
        let msg = vec![0xa5u8; 500];
        let mut a = Shake::new(ShakeVariant::Shake256);
        a.absorb(&msg);
        let one = a.finalize_squeeze(32);
        let mut b = Shake::new(ShakeVariant::Shake256);
        for chunk in msg.chunks(7) {
            b.absorb(chunk);
        }
        assert_eq!(one, b.finalize_squeeze(32));
    }

    /// The lane-filled `fill_u64s` must be stream-equivalent to the
    /// default byte-wise implementation, across rate boundaries and from
    /// unaligned squeeze positions.
    #[test]
    fn fill_u64s_matches_byte_stream() {
        for (pre_bytes, words) in [(0usize, 40usize), (8, 17), (3, 20), (133, 9), (136, 17)] {
            let mut fast = KeccakRng::from_u64_seed(77);
            let mut slow = KeccakRng::from_u64_seed(77);
            let mut skip = vec![0u8; pre_bytes];
            fast.fill_bytes(&mut skip);
            slow.fill_bytes(&mut skip);
            let mut via_fill = vec![0u64; words];
            fast.fill_u64s(&mut via_fill);
            let via_next: Vec<u64> = (0..words)
                .map(|_| {
                    let mut b = [0u8; 8];
                    slow.fill_bytes(&mut b);
                    u64::from_le_bytes(b)
                })
                .collect();
            assert_eq!(via_fill, via_next, "pre_bytes={pre_bytes}, words={words}");
            assert_eq!(fast.next_u64(), slow.next_u64(), "pre_bytes={pre_bytes}");
        }
    }

    #[test]
    fn squeeze_into_matches_squeeze() {
        let mut a = Shake::new(ShakeVariant::Shake256);
        a.absorb(b"squeeze me");
        let mut b = a.clone();
        let one = a.squeeze(300);
        let mut buf = vec![0u8; 300];
        b.squeeze_into(&mut buf);
        assert_eq!(one, buf);
    }

    #[test]
    fn keccak_rng_deterministic() {
        let mut a = KeccakRng::from_u64_seed(99);
        let mut b = KeccakRng::from_u64_seed(99);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    #[should_panic(expected = "cannot absorb")]
    fn absorb_after_squeeze_panics() {
        let mut x = Shake::new(ShakeVariant::Shake128);
        x.absorb(b"a");
        let _ = x.squeeze(1);
        x.absorb(b"b");
    }
}
