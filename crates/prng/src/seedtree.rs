//! Domain-separated seed expansion for deterministic multi-stream sampling.
//!
//! A sharded sampler service needs one independent PRNG stream per worker,
//! all derived from a single root seed so the whole service is replayable.
//! [`SeedTree`] provides that derivation: every node of the tree is a
//! 256-bit seed, children are obtained by absorbing the parent seed, a
//! domain-separation tag and the child index into SHAKE-256 and squeezing
//! a fresh seed. Two different paths through the tree can never collide
//! unless SHAKE-256 itself does, so streams forked for different workers
//! (or different purposes) are computationally independent.
//!
//! The derivation is *positional*, not stateful: forking stream `i` does
//! not disturb stream `j`, and re-deriving the same `(path, index)` always
//! yields the same seed — the property the pool's replay contract rests on.

use crate::{ChaChaRng, KeccakRng, Shake, ShakeVariant};

/// Domain tag for root expansion of a 64-bit convenience seed.
const ROOT_TAG: &[u8] = b"ctgauss.seedtree.root.v1";
/// Domain tag for child-subtree derivation.
const SUBTREE_TAG: &[u8] = b"ctgauss.seedtree.subtree.v1";
/// Domain tag for leaf stream-seed derivation.
const STREAM_TAG: &[u8] = b"ctgauss.seedtree.stream.v1";
/// Domain tag for post-failure epoch-stream derivation.
const EPOCH_TAG: &[u8] = b"ctgauss.seedtree.epoch.v1";

/// A node in a deterministic seed-derivation tree (SHAKE-256 based).
///
/// # Examples
///
/// ```
/// use ctgauss_prng::{RandomSource, SeedTree};
///
/// let tree = SeedTree::from_u64_seed(7);
/// // Worker streams are independent and order-insensitive:
/// let mut w0 = tree.fork_chacha(0);
/// let mut w1 = tree.fork_chacha(1);
/// assert_ne!(w0.next_u64(), w1.next_u64());
/// // ...and reproducible:
/// let mut again = tree.fork_chacha(0);
/// let mut w0b = tree.fork_chacha(0);
/// assert_eq!(again.next_u64(), w0b.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SeedTree {
    seed: [u8; 32],
}

/// Expands `parent || tag || le64(index)` through SHAKE-256 into a fresh
/// 256-bit seed. The three fields have fixed widths (32 bytes, constant
/// tag, 8 bytes), so the encoding is injective per tag.
fn derive(parent: &[u8; 32], tag: &[u8], index: u64) -> [u8; 32] {
    let mut xof = Shake::new(ShakeVariant::Shake256);
    xof.absorb(parent);
    xof.absorb(tag);
    xof.absorb(&index.to_le_bytes());
    let mut out = [0u8; 32];
    xof.squeeze_into(&mut out);
    out
}

/// Expands `parent || tag || le64(a) || le64(b)` through SHAKE-256 into a
/// fresh 256-bit seed — the two-index variant of [`derive`], for
/// derivations addressed by a pair (e.g. worker × epoch). All fields have
/// fixed widths, so the encoding is injective per tag; the single-index
/// and two-index absorptions never collide because their tags differ and
/// their total absorbed lengths differ.
fn derive2(parent: &[u8; 32], tag: &[u8], a: u64, b: u64) -> [u8; 32] {
    let mut xof = Shake::new(ShakeVariant::Shake256);
    xof.absorb(parent);
    xof.absorb(tag);
    xof.absorb(&a.to_le_bytes());
    xof.absorb(&b.to_le_bytes());
    let mut out = [0u8; 32];
    xof.squeeze_into(&mut out);
    out
}

impl SeedTree {
    /// Creates a root node from a 256-bit seed.
    pub fn from_seed(seed: [u8; 32]) -> Self {
        SeedTree { seed }
    }

    /// Creates a root node from a 64-bit convenience seed (expanded through
    /// SHAKE-256 so low-entropy test seeds still spread over the full
    /// state). The expansion uses its own domain tag, so a convenience
    /// root never aliases a stream or subtree derived from any other
    /// root (including the all-zero one).
    pub fn from_u64_seed(seed: u64) -> Self {
        SeedTree {
            seed: derive(&[0u8; 32], ROOT_TAG, seed),
        }
    }

    /// This node's raw 256-bit seed.
    pub fn seed(&self) -> &[u8; 32] {
        &self.seed
    }

    /// Derives the child subtree at `index` — use one subtree per concern
    /// (e.g. one per sampler profile) so streams never alias across
    /// concerns even when leaf indices collide.
    pub fn fork_subtree(&self, index: u64) -> SeedTree {
        SeedTree {
            seed: derive(&self.seed, SUBTREE_TAG, index),
        }
    }

    /// Derives the 256-bit seed of leaf stream `index`.
    ///
    /// The result is the first 32 bytes of the SHAKE-256 expansion of
    /// `seed || tag || le64(index)` — a disjoint prefix per index, which
    /// the property tests in `crates/prng/tests/seedtree.rs` assert
    /// against an independently computed expansion.
    pub fn fork_stream(&self, index: u64) -> [u8; 32] {
        derive(&self.seed, STREAM_TAG, index)
    }

    /// Derives the 256-bit seed of leaf stream `index` in restart epoch
    /// `epoch` — the supervised pool's post-failure streams.
    ///
    /// Epoch 0 **is** the canonical stream
    /// [`fork_stream(index)`](Self::fork_stream): a service that never
    /// fails draws exactly the
    /// streams it always did. Every epoch ≥ 1 is derived under its own
    /// domain tag absorbing both `index` and `epoch`, so a resurrected
    /// worker's stream is disjoint from every other (worker, epoch) pair
    /// and from every plain stream or subtree — a replacement worker can
    /// never replay or overlap the randomness its dead predecessor
    /// already spent, which is what keeps (seed, trace, failure-log) a
    /// complete replay triple instead of a security hazard.
    pub fn fork_stream_epoch(&self, index: u64, epoch: u64) -> [u8; 32] {
        if epoch == 0 {
            self.fork_stream(index)
        } else {
            derive2(&self.seed, EPOCH_TAG, index, epoch)
        }
    }

    /// Derives leaf stream `index` as a [`ChaChaRng`] (the paper's PRNG).
    pub fn fork_chacha(&self, index: u64) -> ChaChaRng {
        ChaChaRng::from_seed(self.fork_stream(index))
    }

    /// Derives epoch `epoch` of leaf stream `index` as a [`ChaChaRng`] —
    /// see [`fork_stream_epoch`](Self::fork_stream_epoch).
    pub fn fork_chacha_epoch(&self, index: u64, epoch: u64) -> ChaChaRng {
        ChaChaRng::from_seed(self.fork_stream_epoch(index, epoch))
    }

    /// Derives leaf stream `index` as a [`KeccakRng`] (the prior work's
    /// PRNG).
    pub fn fork_keccak(&self, index: u64) -> KeccakRng {
        KeccakRng::from_seed(&self.fork_stream(index))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RandomSource;

    #[test]
    fn streams_are_reproducible_and_order_insensitive() {
        let tree = SeedTree::from_u64_seed(42);
        let a = tree.fork_stream(3);
        let _ = tree.fork_stream(9); // deriving another stream...
        let b = tree.fork_stream(3); // ...does not disturb stream 3
        assert_eq!(a, b);
    }

    #[test]
    fn distinct_indices_give_distinct_streams() {
        let tree = SeedTree::from_u64_seed(1);
        let mut seen = std::collections::HashSet::new();
        for i in 0..64 {
            assert!(seen.insert(tree.fork_stream(i)), "stream {i} collided");
        }
    }

    #[test]
    fn subtree_and_stream_derivations_are_domain_separated() {
        let tree = SeedTree::from_u64_seed(5);
        // Same index through the two tags must not collide.
        assert_ne!(tree.fork_subtree(7).seed, tree.fork_stream(7));
        // Same leaf index under different subtrees must not collide.
        assert_ne!(
            tree.fork_subtree(0).fork_stream(1),
            tree.fork_subtree(1).fork_stream(1)
        );
    }

    #[test]
    fn fork_stream_is_a_shake256_prefix() {
        // Re-derive stream 11 by hand against the public Shake API.
        let tree = SeedTree::from_seed([0xab; 32]);
        let mut xof = Shake::new(ShakeVariant::Shake256);
        xof.absorb(&[0xab; 32]);
        xof.absorb(STREAM_TAG);
        xof.absorb(&11u64.to_le_bytes());
        let expansion = xof.finalize_squeeze(64);
        assert_eq!(tree.fork_stream(11), expansion[..32]);
    }

    #[test]
    fn u64_roots_do_not_alias_zero_root_streams() {
        // from_u64_seed(s) must not equal the all-zero root's stream s
        // (they use different domain tags), nor its subtree s.
        let zero = SeedTree::from_seed([0u8; 32]);
        for s in 0..32 {
            let root = SeedTree::from_u64_seed(s);
            assert_ne!(*root.seed(), zero.fork_stream(s), "stream alias at {s}");
            assert_ne!(
                *root.seed(),
                *zero.fork_subtree(s).seed(),
                "subtree alias at {s}"
            );
        }
    }

    #[test]
    fn epoch_zero_is_the_canonical_stream() {
        let tree = SeedTree::from_u64_seed(9);
        for w in 0..8 {
            assert_eq!(tree.fork_stream_epoch(w, 0), tree.fork_stream(w));
        }
    }

    #[test]
    fn epoch_streams_are_disjoint_across_epochs_and_workers() {
        let tree = SeedTree::from_u64_seed(17);
        let mut seen = std::collections::HashSet::new();
        for w in 0..8u64 {
            for e in 0..8u64 {
                assert!(
                    seen.insert(tree.fork_stream_epoch(w, e)),
                    "epoch stream (w={w}, e={e}) collided"
                );
            }
        }
        // Epoch streams never alias plain streams or subtrees either.
        for w in 0..8u64 {
            for e in 1..4u64 {
                let s = tree.fork_stream_epoch(w, e);
                for i in 0..8u64 {
                    assert_ne!(s, tree.fork_stream(i), "aliased stream {i}");
                    assert_ne!(&s, tree.fork_subtree(i).seed(), "aliased subtree {i}");
                }
            }
        }
    }

    #[test]
    fn epoch_generators_match_their_seeds() {
        let tree = SeedTree::from_u64_seed(23);
        let mut direct = ChaChaRng::from_seed(tree.fork_stream_epoch(3, 2));
        let mut forked = tree.fork_chacha_epoch(3, 2);
        for _ in 0..16 {
            assert_eq!(direct.next_u64(), forked.next_u64());
        }
    }

    #[test]
    fn forked_generators_match_their_seeds() {
        let tree = SeedTree::from_u64_seed(13);
        let seed = tree.fork_stream(2);
        let mut direct = ChaChaRng::from_seed(seed);
        let mut forked = tree.fork_chacha(2);
        for _ in 0..16 {
            assert_eq!(direct.next_u64(), forked.next_u64());
        }
        let mut direct = KeccakRng::from_seed(&seed);
        let mut forked = tree.fork_keccak(2);
        for _ in 0..16 {
            assert_eq!(direct.next_u64(), forked.next_u64());
        }
    }
}
