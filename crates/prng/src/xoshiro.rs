//! Fast non-cryptographic generators for tests and workload generation.

use crate::RandomSource;

/// The SplitMix64 generator (Steele, Lea, Vigna): one 64-bit state word,
/// mainly used to seed other generators and in tests.
///
/// # Examples
///
/// ```
/// use ctgauss_prng::{SplitMix64, RandomSource};
///
/// let mut rng = SplitMix64::new(0);
/// assert_eq!(rng.next_u64(), 0xe220a8397b1dcdaf);
/// ```
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Advances the state and returns the next output.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }
}

impl RandomSource for SplitMix64 {
    fn fill_bytes(&mut self, dst: &mut [u8]) {
        for chunk in dst.chunks_mut(8) {
            let bytes = self.next().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }

    fn next_u64(&mut self) -> u64 {
        self.next()
    }
}

/// The xoshiro256++ generator (Blackman, Vigna) — fast, high-quality,
/// non-cryptographic.
///
/// # Examples
///
/// ```
/// use ctgauss_prng::{Xoshiro256pp, RandomSource};
///
/// let mut rng = Xoshiro256pp::from_u64_seed(1234);
/// let _ = rng.next_u64();
/// ```
#[derive(Debug, Clone)]
pub struct Xoshiro256pp {
    s: [u64; 4],
}

impl Xoshiro256pp {
    /// Creates a generator from explicit state (must not be all zero).
    ///
    /// # Panics
    ///
    /// Panics if all four state words are zero.
    pub fn from_state(s: [u64; 4]) -> Self {
        assert!(
            s.iter().any(|&w| w != 0),
            "xoshiro state must not be all zero"
        );
        Xoshiro256pp { s }
    }

    /// Creates a generator by expanding a 64-bit seed through SplitMix64 (the
    /// seeding procedure recommended by the xoshiro authors).
    pub fn from_u64_seed(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        Xoshiro256pp {
            s: [sm.next(), sm.next(), sm.next(), sm.next()],
        }
    }

    /// Advances the state and returns the next output.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl RandomSource for Xoshiro256pp {
    fn fill_bytes(&mut self, dst: &mut [u8]) {
        for chunk in dst.chunks_mut(8) {
            let bytes = self.next().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }

    fn next_u64(&mut self) -> u64 {
        self.next()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_values() {
        // First three outputs for seed 0, widely published reference values.
        let mut rng = SplitMix64::new(0);
        assert_eq!(rng.next(), 0xe220a8397b1dcdaf);
        assert_eq!(rng.next(), 0x6e789e6aa1b965f4);
        assert_eq!(rng.next(), 0x06c45d188009454f);
    }

    #[test]
    fn xoshiro_rejects_zero_state() {
        let r = std::panic::catch_unwind(|| Xoshiro256pp::from_state([0; 4]));
        assert!(r.is_err());
    }

    #[test]
    fn xoshiro_deterministic_and_spread() {
        let mut a = Xoshiro256pp::from_u64_seed(5);
        let mut b = Xoshiro256pp::from_u64_seed(5);
        let mut ones = 0u32;
        for _ in 0..1000 {
            let v = a.next();
            assert_eq!(v, b.next());
            ones += v.count_ones();
        }
        // 64_000 bits, expect ~32_000 ones; allow wide tolerance.
        assert!((28_000..36_000).contains(&ones), "bit balance off: {ones}");
    }

    #[test]
    fn fill_u64s_matches_next_loop() {
        let mut a = Xoshiro256pp::from_u64_seed(21);
        let mut b = Xoshiro256pp::from_u64_seed(21);
        let mut filled = [0u64; 37];
        a.fill_u64s(&mut filled);
        for (i, &w) in filled.iter().enumerate() {
            assert_eq!(w, b.next_u64(), "word {i}");
        }
        let mut a = SplitMix64::new(21);
        let mut b = SplitMix64::new(21);
        let mut filled = [0u64; 37];
        a.fill_u64s(&mut filled);
        for (i, &w) in filled.iter().enumerate() {
            assert_eq!(w, b.next_u64(), "word {i}");
        }
    }

    #[test]
    fn fill_bytes_partial_chunks() {
        let mut rng = SplitMix64::new(7);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        let mut rng2 = SplitMix64::new(7);
        let w0 = rng2.next().to_le_bytes();
        assert_eq!(&buf[..8], &w0);
    }
}
