//! From-scratch pseudorandom generators and randomness-source traits.
//!
//! The DAC 2019 paper keeps the pseudorandom generator fixed across all
//! compared samplers (ChaCha, as in the Falcon reference implementation) and
//! observes in its conclusion that 60–85% of total sampling time is spent
//! producing randomness. To reproduce those measurements this crate
//! implements, without external dependencies:
//!
//! * [`ChaCha20`] / [`ChaChaRng`] — the RFC 8439 stream cipher, the PRNG used
//!   by Falcon's reference implementation and by Table 1 of the paper.
//! * [`KeccakF1600`] / [`Shake`] / [`KeccakRng`] — the Keccak permutation and
//!   SHAKE XOFs; the PRNG used by the prior work (IEEE TC 2018) and by the
//!   paper's conclusion for the 80–85% overhead figure. SHAKE-256 also backs
//!   Falcon's hash-to-point.
//! * [`SplitMix64`] / [`Xoshiro256pp`] — fast non-cryptographic generators
//!   for tests and workload generation.
//! * [`SeedTree`] — domain-separated SHAKE-256 seed expansion, deriving
//!   independent, individually replayable worker streams from one root
//!   seed (the randomness backbone of the `ctgauss-pool` service).
//! * [`RandomSource`] / [`BitSource`] — the traits samplers consume, plus
//!   [`CountingSource`] for measuring exactly how much randomness a sampler
//!   draws (byte-scanning CDT draws lazily; this is how we verify it).
//!
//! The block generators override [`RandomSource::fill_u64s`] with a
//! block-filled fast path (whole ChaCha blocks / Keccak lanes straight
//! into the destination, no byte staging) that is exactly
//! stream-equivalent to the default byte-wise implementation — the
//! samplers draw their per-batch randomness through it.
//!
//! # Examples
//!
//! ```
//! use ctgauss_prng::{BitBuffer, BitSource, ChaChaRng, RandomSource};
//!
//! let mut rng = ChaChaRng::from_seed([7u8; 32]);
//! let word = rng.next_u64();
//! let mut bits = BitBuffer::new(rng);
//! let bit = bits.next_bit();
//! let _ = (word, bit);
//! ```
// `deny`, not `forbid`: the ChaCha eight-block refill carries one scoped
// `unsafe` — the `#[target_feature(enable = "avx2")]` shim behind runtime
// CPU detection. Everything else stays unsafe-free, enforced crate-wide.
#![deny(unsafe_code)]
#![warn(missing_docs)]

mod chacha;
mod counting;
mod keccak;
mod seedtree;
mod traits;
mod xoshiro;

pub use chacha::{ChaCha20, ChaChaRng};
pub use counting::CountingSource;
pub use keccak::{KeccakF1600, KeccakRng, Shake, ShakeVariant};
pub use seedtree::SeedTree;
pub use traits::{BitBuffer, BitSource, RandomSource};
pub use xoshiro::{SplitMix64, Xoshiro256pp};

// Every generator in this crate is consumed from worker threads by the
// `ctgauss-pool` service, so `Send` (and, for the shared-nothing types,
// `Sync`) is part of the public contract: losing it through an interior
// `Rc`/raw-pointer refactor must fail compilation, not a downstream build.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<ChaChaRng>();
    assert_send_sync::<KeccakRng>();
    assert_send_sync::<Shake>();
    assert_send_sync::<KeccakF1600>();
    assert_send_sync::<SplitMix64>();
    assert_send_sync::<Xoshiro256pp>();
    assert_send_sync::<SeedTree>();
    assert_send_sync::<CountingSource<ChaChaRng>>();
    assert_send_sync::<BitBuffer<KeccakRng>>();
};
