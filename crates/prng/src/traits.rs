//! The randomness-source traits consumed by every sampler in the workspace.

/// A source of uniformly random bytes.
///
/// Implemented by all generators in this crate. Samplers are generic over
/// `R: RandomSource` so the same code runs on ChaCha (the paper's Table 1
/// configuration), Keccak (the prior work's configuration) or a fast
/// non-cryptographic generator in tests.
pub trait RandomSource {
    /// Fills `dst` with random bytes.
    fn fill_bytes(&mut self, dst: &mut [u8]);

    /// Returns the next random `u64` (little-endian from the byte stream).
    fn next_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.fill_bytes(&mut b);
        u64::from_le_bytes(b)
    }

    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.fill_bytes(&mut b);
        u32::from_le_bytes(b)
    }

    /// Returns the next random byte.
    fn next_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.fill_bytes(&mut b);
        b[0]
    }

    /// Fills a slice of `u64` words.
    ///
    /// # Contract
    ///
    /// The words are exactly the little-endian interpretation of the next
    /// `8 * dst.len()` bytes of the generator's byte stream — identical to
    /// calling [`next_u64`](Self::next_u64) in a loop. Implementors may
    /// override this for speed (the block generators in this crate write
    /// whole PRNG blocks straight into `dst`, skipping the byte staging
    /// buffer) but must preserve that stream equivalence; the samplers'
    /// randomness draw-order contract depends on it.
    fn fill_u64s(&mut self, dst: &mut [u64]) {
        for w in dst {
            *w = self.next_u64();
        }
    }
}

impl<R: RandomSource + ?Sized> RandomSource for &mut R {
    fn fill_bytes(&mut self, dst: &mut [u8]) {
        (**self).fill_bytes(dst)
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn fill_u64s(&mut self, dst: &mut [u64]) {
        (**self).fill_u64s(dst)
    }
}

/// A source of individual random bits, as consumed by the Knuth-Yao random
/// walk (`RandomBit()` in Algorithm 1 of the paper).
///
/// The blanket implementation serves bits from buffered `u64` words,
/// least-significant bit first. Each implementor of [`RandomSource`] can be
/// wrapped in a [`BitBuffer`] to obtain an efficient `BitSource`; the
/// convenience blanket impl below does exactly that per call site.
pub trait BitSource {
    /// Returns the next random bit.
    fn next_bit(&mut self) -> bool;
}

/// Buffers a [`RandomSource`] to serve single bits (LSB-first within each
/// 64-bit word).
///
/// # Examples
///
/// ```
/// use ctgauss_prng::{BitBuffer, BitSource, SplitMix64};
///
/// let mut bits = BitBuffer::new(SplitMix64::new(1));
/// let first: bool = bits.next_bit();
/// let _ = first;
/// ```
#[derive(Debug, Clone)]
pub struct BitBuffer<R> {
    src: R,
    word: u64,
    avail: u32,
}

impl<R: RandomSource> BitBuffer<R> {
    /// Wraps a byte source into a bit source.
    pub fn new(src: R) -> Self {
        BitBuffer {
            src,
            word: 0,
            avail: 0,
        }
    }

    /// Returns the wrapped source.
    pub fn into_inner(self) -> R {
        self.src
    }
}

impl<R: RandomSource> BitSource for BitBuffer<R> {
    fn next_bit(&mut self) -> bool {
        if self.avail == 0 {
            self.word = self.src.next_u64();
            self.avail = 64;
        }
        let bit = self.word & 1 == 1;
        self.word >>= 1;
        self.avail -= 1;
        bit
    }
}

impl<B: BitSource + ?Sized> BitSource for &mut B {
    fn next_bit(&mut self) -> bool {
        (**self).next_bit()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SplitMix64;

    #[test]
    fn bit_buffer_is_lsb_first() {
        struct Fixed(u64);
        impl RandomSource for Fixed {
            fn fill_bytes(&mut self, dst: &mut [u8]) {
                for (i, b) in dst.iter_mut().enumerate() {
                    *b = self.0.to_le_bytes()[i % 8];
                }
            }
        }
        let mut bits = BitBuffer::new(Fixed(0b1011));
        assert!(bits.next_bit());
        assert!(bits.next_bit());
        assert!(!bits.next_bit());
        assert!(bits.next_bit());
        assert!(!bits.next_bit());
    }

    #[test]
    fn bit_buffer_refills_after_64_bits() {
        let mut bits = BitBuffer::new(SplitMix64::new(42));
        // Consume 200 bits without panicking; determinism check.
        let seq1: Vec<bool> = (0..200).map(|_| bits.next_bit()).collect();
        let mut bits2 = BitBuffer::new(SplitMix64::new(42));
        let seq2: Vec<bool> = (0..200).map(|_| bits2.next_bit()).collect();
        assert_eq!(seq1, seq2);
    }

    #[test]
    fn default_word_methods_consistent_with_fill_bytes() {
        let mut a = SplitMix64::new(9);
        let mut b = SplitMix64::new(9);
        let w = a.next_u64();
        let mut bytes = [0u8; 8];
        b.fill_bytes(&mut bytes);
        assert_eq!(w, u64::from_le_bytes(bytes));
    }
}
