//! Fault-injection tests: the failure paths of the supervised pool,
//! exercised end to end.
//!
//! Each test arms a [`FaultPlan`], drives real traffic, and asserts the
//! three robustness guarantees: no ticket ever hangs (every wait here is
//! a bounded `wait_timeout`), the supervisor resurrects dead workers
//! onto fresh epoch streams (or degrades to `WorkerGone` once the budget
//! is spent), and the (seed, trace, failure-log) triple replays the live
//! run bit for bit.

use std::time::{Duration, Instant};

use ctgauss_core::SamplerSpec;
use ctgauss_pool::{
    replay_trace, submit_with_retry, FailureOutcome, FaultPlan, LaneWidth, Pool, PoolError,
    ProfileId, RestartPolicy, RetryPolicy, SampleRequest, ShardState, TraceEntry, WaitError,
};
use ctgauss_prng::SeedTree;

fn test_spec() -> SamplerSpec {
    SamplerSpec::new("2", 16)
}

fn chaos_pool(
    threads: usize,
    seed: u64,
    faults: FaultPlan,
    policy: RestartPolicy,
) -> (Pool, ProfileId) {
    let mut builder = Pool::builder()
        .threads(threads)
        .width(LaneWidth::W1)
        .seed_u64(seed)
        .faults(faults)
        .restart_policy(policy);
    let profile = builder.profile(&test_spec()).expect("profile builds");
    (builder.spawn(), profile)
}

/// Generous per-ticket deadline: anything that trips it is a hang, which
/// is exactly what these tests exist to rule out.
const HANG: Duration = Duration::from_secs(30);

/// Submits the trace in chunks of `chunk` requests (submit the chunk,
/// wait it out, next chunk — so traffic keeps flowing *after* deaths,
/// not just before), every wait bounded by a deadline. Returns
/// `Some(samples)` per fulfilled request, `None` where the pool answered
/// `WorkerGone` (at submission or through the ticket). Every other
/// outcome — including a deadline hit — is a test failure.
fn run_chaos_trace(
    pool: &Pool,
    profile: ProfileId,
    counts: &[usize],
    chunk: usize,
) -> Vec<Option<Vec<i32>>> {
    let mut live = Vec::with_capacity(counts.len());
    for chunk_counts in counts.chunks(chunk) {
        let tickets: Vec<Result<_, PoolError>> = chunk_counts
            .iter()
            .map(|&count| pool.submit(SampleRequest { profile, count }))
            .collect();
        let base = live.len();
        live.extend(tickets.into_iter().enumerate().map(|(i, ticket)| {
            let seq = base + i;
            match ticket {
                Ok(ticket) => match ticket.wait_timeout(HANG) {
                    Ok(response) => {
                        assert_eq!(response.seq, seq as u64, "seq echo audit");
                        Some(response.samples)
                    }
                    Err(WaitError::Pool(PoolError::WorkerGone)) => None,
                    Err(WaitError::Pool(error)) => panic!("request {seq}: unexpected {error}"),
                    Err(WaitError::TimedOut(_)) => panic!("request {seq}: ticket hung"),
                },
                Err(PoolError::WorkerGone) => None,
                Err(error) => panic!("request {seq}: unexpected submit error {error}"),
            }
        }));
    }
    live
}

/// Polls until shard `worker` reaches `state` (the supervisor works
/// asynchronously) — failing the test if it never does.
fn await_shard_state(pool: &Pool, worker: usize, state: ShardState) {
    let deadline = Instant::now() + HANG;
    while pool.health().shards[worker].state != state {
        assert!(
            Instant::now() < deadline,
            "shard {worker} never reached {state:?} (now {:?})",
            pool.health().shards[worker].state
        );
        std::thread::sleep(Duration::from_millis(1));
    }
}

/// Replays (seed, trace, failure-log) and asserts the live run matches
/// bit for bit — fulfilled sample vectors and abandonment pattern alike.
fn assert_replay_matches(
    seed: u64,
    threads: usize,
    counts: &[usize],
    live: &[Option<Vec<i32>>],
    pool: &Pool,
) {
    pool.shutdown(); // the failure log is complete only after shutdown
    let failures = pool.failure_log();
    let trace: Vec<TraceEntry> = counts
        .iter()
        .map(|&count| TraceEntry {
            profile_index: 0,
            count,
        })
        .collect();
    let profiles = [test_spec().build_shared().expect("profile builds")];
    let replayed = replay_trace(
        &SeedTree::from_u64_seed(seed),
        &profiles,
        threads,
        LaneWidth::W1,
        &trace,
        &failures,
    );
    assert_eq!(replayed.len(), live.len());
    for (seq, (got, want)) in live.iter().zip(&replayed).enumerate() {
        assert_eq!(
            got, want,
            "request seq {seq} diverged between live run and replay"
        );
    }
}

#[test]
fn injected_panic_resolves_every_ticket_and_resurrects_the_shard() {
    let seed = 4242;
    let threads = 2;
    let faults = FaultPlan::new().panic_at_request(0, 5);
    let (pool, profile) = chaos_pool(threads, seed, faults, RestartPolicy::default());
    let counts: Vec<usize> = (0..60).map(|i| 10 + (i % 7) * 33).collect();

    let live = run_chaos_trace(&pool, profile, &counts, counts.len());

    // The injected panic abandoned at least the request it fired on.
    let abandoned = live.iter().filter(|r| r.is_none()).count();
    assert!(abandoned >= 1, "the fault's own request must be abandoned");
    // Only worker 0 (even seqs) was faulted; every odd seq is served.
    for (seq, response) in live.iter().enumerate() {
        if seq % threads == 1 {
            assert!(response.is_some(), "shard 1 request seq {seq} was lost");
        }
    }

    // Exactly one death, resurrected into epoch 1. (The tickets can all
    // resolve while the supervisor is still in its backoff window, so
    // wait for the resurrection to land.)
    await_shard_state(&pool, 0, ShardState::Alive { epoch: 1 });
    let health = pool.health();
    assert_eq!(health.restarts(), 1);
    assert_eq!(health.abandoned(), abandoned as u64);
    assert_eq!(health.shards[0].state, ShardState::Alive { epoch: 1 });
    assert_eq!(health.shards[1].state, ShardState::Alive { epoch: 0 });
    pool.shutdown(); // the failure log is complete only after shutdown
    let failures = pool.failure_log();
    assert_eq!(failures.len(), 1);
    assert_eq!(failures[0].worker, 0);
    assert_eq!(failures[0].epoch, 0);
    assert_eq!(
        failures[0].outcome,
        FailureOutcome::Restarted { new_epoch: 1 }
    );
    assert!(
        failures[0].cause.contains("injected fault"),
        "cause records the panic payload: {:?}",
        failures[0].cause
    );
    assert!(failures[0].abandoned.windows(2).all(|w| w[0] < w[1]));
    assert!(failures[0]
        .abandoned
        .iter()
        .all(|seq| seq % threads as u64 == 0));

    assert_replay_matches(seed, threads, &counts, &live, &pool);
}

#[test]
fn restart_budget_exhaustion_degrades_to_worker_gone() {
    let seed = 77;
    let threads = 2;
    // One allowed restart, but the worker dies again in its second epoch:
    // lifetime request counts keep counting across epochs, so two faults.
    let faults = FaultPlan::new()
        .panic_at_request(0, 3)
        .panic_at_request(0, 6);
    let policy = RestartPolicy {
        max_restarts: 1,
        ..RestartPolicy::default()
    };
    let (pool, profile) = chaos_pool(threads, seed, faults, policy);
    let counts: Vec<usize> = vec![50; 80];

    // Small chunks so traffic keeps flowing between the two deaths — the
    // second fault only fires once the resurrected worker has served
    // enough *new* requests to reach lifetime request 6.
    let live = run_chaos_trace(&pool, profile, &counts, 8);

    // Shard 1 untouched; shard 0 dead for good after the second death.
    for (seq, response) in live.iter().enumerate() {
        if seq % threads == 1 {
            assert!(response.is_some(), "shard 1 request seq {seq} was lost");
        }
    }
    let shard0: Vec<&Option<Vec<i32>>> = live.iter().step_by(threads).collect();
    let served_on_0 = shard0.iter().filter(|r| r.is_some()).count();
    assert!(served_on_0 >= 3, "epochs 0 and 1 each served some requests");
    assert!(
        shard0.iter().rev().take(3).all(|r| r.is_none()),
        "after exhaustion every shard-0 request fails"
    );

    await_shard_state(&pool, 0, ShardState::Dead);
    let health = pool.health();
    assert_eq!(health.shards[0].state, ShardState::Dead);
    assert_eq!(health.shards[0].restarts, 1);
    assert_eq!(health.shards[1].state, ShardState::Alive { epoch: 0 });
    pool.shutdown(); // the failure log is complete only after shutdown
    let failures = pool.failure_log();
    assert_eq!(failures.len(), 2);
    assert_eq!(
        failures[0].outcome,
        FailureOutcome::Restarted { new_epoch: 1 }
    );
    assert_eq!(failures[1].outcome, FailureOutcome::Exhausted);
    assert_eq!(failures[1].epoch, 1);

    assert_replay_matches(seed, threads, &counts, &live, &pool);
}

#[test]
fn stalled_worker_trips_deadlines_and_retry_recovers() {
    let seed = 9;
    let stall = Duration::from_millis(400);
    let faults = FaultPlan::new().stall_at_request(0, 1, stall);
    let mut builder = Pool::builder()
        .threads(1)
        .width(LaneWidth::W1)
        .seed_u64(seed)
        .queue_capacity(1)
        .faults(faults);
    let profile = builder.profile(&test_spec()).expect("profile builds");
    let pool = builder.spawn();
    let request = SampleRequest { profile, count: 8 };

    // A is claimed, then the worker stalls before serving it.
    let ticket_a = pool.submit(request).expect("submit A");
    while pool
        .metrics()
        .gauge("pool_shards", "shard0_queue_depth")
        .unwrap()
        > 0.0
    {
        std::thread::yield_now();
    }
    // B fills the only ring slot while the worker sleeps...
    let _ticket_b = pool.submit(request).expect("submit B");
    // ...so C cannot be placed before its deadline.
    match pool.submit_timeout(request, Duration::from_millis(30)) {
        Err(PoolError::TimedOut) => {}
        other => panic!("expected TimedOut, got {other:?}"),
    }
    // A bounded ticket wait trips too — and hands the ticket back.
    let ticket_a = match ticket_a.wait_timeout(Duration::from_millis(30)) {
        Err(WaitError::TimedOut(ticket)) => ticket,
        other => panic!("expected ticket timeout, got {other:?}"),
    };
    // The retry helper outlasts the stall and lands C after all.
    let policy = RetryPolicy {
        attempts: 40,
        submit_timeout: Duration::from_millis(50),
        ..RetryPolicy::default()
    };
    let ticket_c = submit_with_retry(&pool, request, &policy).expect("retry lands C");
    // The stall was a delay, not a death: everything is eventually served
    // and the pool is unblemished.
    assert_eq!(ticket_a.wait_timeout(HANG).expect("A served").seq, 0);
    assert_eq!(ticket_c.wait_timeout(HANG).expect("C served").seq, 2);
    assert!(pool.health().all_alive());
    assert_eq!(pool.health().restarts(), 0);
    assert!(pool.failure_log().is_empty());
}

#[test]
fn fault_spec_string_drives_the_same_plan_as_the_builder() {
    let parsed =
        FaultPlan::parse("panic@w0.req5; stall@w1.batch2:40ms; cacheload:3").expect("parses");
    let built = FaultPlan::new()
        .panic_at_request(0, 5)
        .stall_at_batch(1, 2, Duration::from_millis(40))
        .fail_cache_loads(3);
    assert_eq!(parsed, built);
}
