//! Profile-registry lifecycle: hot-loading and retiring profiles on a
//! *running* pool, and the edges the registry's invariants promise —
//! retire-while-in-flight completes, corrupted cached artifacts fall
//! back to synthesis, and `ProfileId`s stay stable across churn.

use std::fs;

use ctgauss_core::{KernelCache, SamplerSpec};
use ctgauss_pool::{CoalesceConfig, LaneWidth, Pool, PoolError, SampleRequest};

fn test_spec() -> SamplerSpec {
    SamplerSpec::new("2", 16)
}

fn other_spec() -> SamplerSpec {
    SamplerSpec::new("1.5", 16)
}

/// A scratch cache directory unique to this test binary run.
fn scratch_cache(tag: &str) -> KernelCache {
    let dir = std::env::temp_dir().join(format!(
        "ctgauss-pool-registry-{tag}-{}",
        std::process::id()
    ));
    let _ = fs::remove_dir_all(&dir);
    KernelCache::at(dir)
}

#[test]
fn hot_loaded_profile_is_immediately_servable() {
    let mut builder = Pool::builder()
        .threads(2)
        .width(LaneWidth::W1)
        .seed_u64(11)
        .coalesce(CoalesceConfig::default());
    let base = builder.profile(&test_spec()).expect("base profile");
    let pool = builder.spawn();

    let hot = pool
        .add_profile_with(&other_spec(), &KernelCache::disabled())
        .expect("hot-load builds");
    assert_ne!(base, hot);
    assert_eq!(hot.index(), 1, "slots append in order");

    let samples = pool.sample_vec(hot, 200).expect("hot profile serves");
    assert_eq!(samples.len(), 200);
    assert!(samples.iter().any(|&s| s != 0));

    let profiles = pool.profiles();
    assert_eq!(profiles.len(), 2);
    assert_eq!(profiles[1].label, "1.5");
    assert_eq!(profiles[1].precision, 16);
    assert!(!profiles[1].retired);
}

#[test]
fn retire_while_in_flight_completes_and_gates_new_submissions() {
    let mut builder = Pool::builder()
        .threads(1)
        .width(LaneWidth::W4)
        .seed_u64(22)
        .coalesce(CoalesceConfig::default());
    let doomed = builder.profile(&test_spec()).expect("profile");
    let survivor = builder.profile(&other_spec()).expect("profile");
    let pool = builder.spawn();

    // A large request is accepted, then the profile is retired while the
    // request is (at best) still staged or being served.
    let ticket = pool
        .submit(SampleRequest {
            profile: doomed,
            count: 200_000,
        })
        .expect("accepted before retirement");
    pool.retire_profile(doomed).expect("retire");

    // Retirement is submission-side only: the in-flight request
    // completes normally...
    let response = ticket.wait().expect("in-flight request completes");
    assert_eq!(response.samples.len(), 200_000);

    // ...new submissions on the retired id are refused...
    assert_eq!(
        pool.submit(SampleRequest {
            profile: doomed,
            count: 8,
        })
        .unwrap_err(),
        PoolError::UnknownProfile
    );

    // ...and unrelated profiles are untouched.
    assert_eq!(pool.sample_vec(survivor, 64).expect("serves").len(), 64);

    // The id still resolves for auditing/replay, and the snapshot shows
    // the tombstone.
    assert!(pool.profile_sampler(doomed).is_ok());
    let profiles = pool.profiles();
    assert!(profiles[doomed.index()].retired);
    assert!(!profiles[survivor.index()].retired);

    // Retire is idempotent.
    pool.retire_profile(doomed).expect("idempotent retire");
}

#[test]
fn profile_ids_stay_stable_across_add_and_retire() {
    let mut builder = Pool::builder().threads(1).seed_u64(33);
    let first = builder.profile(&test_spec()).expect("profile");
    let pool = builder.spawn();

    let second = pool
        .add_profile_with(&other_spec(), &KernelCache::disabled())
        .expect("add");
    pool.retire_profile(first).expect("retire");
    let third = pool
        .add_profile_with(&SamplerSpec::new("3", 16), &KernelCache::disabled())
        .expect("add after retire");

    // Retirement never frees an index: slots only append.
    assert_eq!(first.index(), 0);
    assert_eq!(second.index(), 1);
    assert_eq!(third.index(), 2);

    let profiles = pool.profiles();
    assert_eq!(profiles.len(), 3);
    assert!(profiles[0].retired);
    assert!(!profiles[1].retired);
    assert!(!profiles[2].retired);
    // Snapshot indices equal slot positions (what the RPC front end
    // serves as wire profile indices).
    for (i, info) in profiles.iter().enumerate() {
        assert_eq!(info.index, i);
    }

    // Ids minted before the churn still submit (and the retired one
    // still resolves but does not submit).
    assert_eq!(pool.sample_vec(second, 32).expect("serves").len(), 32);
    assert_eq!(pool.sample_vec(third, 32).expect("serves").len(), 32);
    assert_eq!(
        pool.submit(SampleRequest {
            profile: first,
            count: 8,
        })
        .unwrap_err(),
        PoolError::UnknownProfile
    );
}

/// A corrupted cached artifact must not poison a hot-load: the cache
/// load is revalidated, rejected, and the build falls back to in-process
/// synthesis — producing a sampler bit-identical to a cache-less build.
#[test]
fn hot_load_from_corrupted_artifact_falls_back_to_synthesis() {
    let cache = scratch_cache("corrupt");
    let spec = other_spec();

    // Warm the cache with the real artifact, then corrupt it in place.
    spec.build_shared_with(&cache).expect("warm the cache");
    let path = cache
        .entry_path(spec.fingerprint())
        .expect("cache is enabled");
    assert!(path.exists(), "warming stored an artifact");
    fs::write(&path, b"not a kernel artifact").expect("corrupt the entry");

    let mut builder = Pool::builder()
        .threads(1)
        .width(LaneWidth::W1)
        .seed_u64(44)
        .coalesce(CoalesceConfig::default());
    builder.profile(&test_spec()).expect("base profile");
    let pool = builder.spawn();

    let hot = pool
        .add_profile_with(&spec, &cache)
        .expect("corrupted artifact falls back to synthesis");
    let via_corrupted = pool.sample_vec(hot, 300).expect("serves");

    // Reference pool: same seed and shape, profile built with no cache
    // at all. The corrupted-cache pool must match it bit for bit.
    let mut builder = Pool::builder()
        .threads(1)
        .width(LaneWidth::W1)
        .seed_u64(44)
        .coalesce(CoalesceConfig::default());
    builder.profile(&test_spec()).expect("base profile");
    let pool = builder.spawn();
    let clean = pool
        .add_profile_with(&spec, &KernelCache::disabled())
        .expect("synthesis");
    assert_eq!(
        via_corrupted,
        pool.sample_vec(clean, 300).expect("serves"),
        "fallback synthesis must equal a cache-less build"
    );

    if let Some(dir) = cache.dir() {
        let _ = fs::remove_dir_all(dir);
    }
}

/// `ProfileId`s are bound to their minting pool even through the
/// runtime-add path.
#[test]
fn foreign_hot_loaded_ids_are_rejected() {
    let mut builder_a = Pool::builder().threads(1).seed_u64(1);
    builder_a.profile(&test_spec()).expect("profile");
    let pool_a = builder_a.spawn();
    let mut builder_b = Pool::builder().threads(1).seed_u64(1);
    builder_b.profile(&test_spec()).expect("profile");
    let pool_b = builder_b.spawn();

    let foreign = pool_a
        .add_profile_with(&other_spec(), &KernelCache::disabled())
        .expect("add");
    assert_eq!(
        pool_b
            .submit(SampleRequest {
                profile: foreign,
                count: 8,
            })
            .unwrap_err(),
        PoolError::UnknownProfile
    );
    assert!(pool_b.retire_profile(foreign).is_err());
}
