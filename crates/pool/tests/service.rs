//! Service-level behaviour: coalescing, error paths, statistics,
//! multi-profile routing, goodness of fit through the pool, and the
//! Falcon signing path drawing from a pool handle.

use ctgauss_core::SamplerSpec;
use ctgauss_falcon::sign::BaseSampler;
use ctgauss_falcon::{FalconParams, SecretKey};
use ctgauss_pool::{
    falcon_profile_spec, LaneWidth, Pool, PoolError, PooledBase, ProfileId, SampleRequest,
};
use ctgauss_prng::ChaChaRng;
use ctgauss_stats::{chi_square_test, discrete_gaussian_pmf, Histogram};

fn test_spec() -> SamplerSpec {
    SamplerSpec::new("2", 16)
}

#[test]
fn small_requests_are_coalesced_into_full_batches() {
    // 10 requests x 10 samples on one W=1 worker demand 100 samples;
    // coalescing must run exactly ceil(100 / 64) = 2 kernel batches, not
    // one per request.
    let mut builder = Pool::builder().threads(1).width(LaneWidth::W1).seed_u64(3);
    let profile = builder.profile(&test_spec()).expect("profile");
    let pool = builder.spawn();
    let tickets: Vec<_> = (0..10)
        .map(|_| pool.submit(SampleRequest { profile, count: 10 }).unwrap())
        .collect();
    for t in tickets {
        assert_eq!(t.wait().unwrap().samples.len(), 10);
    }
    let metrics = pool.metrics();
    assert_eq!(metrics.counter("pool", "samples_total"), Some(100));
    assert_eq!(metrics.counter("pool", "requests_total"), Some(10));
    assert_eq!(
        metrics.counter("pool", "batches_total"),
        Some(2),
        "coalescer must pack 10 requests into 2 batches"
    );
    // 100 of the 128 generated samples were delivered; the rest carry.
    let fill = metrics.gauge("pool", "batch_fill_ratio").unwrap();
    assert!((fill - 100.0 / 128.0).abs() < 1e-9, "fill ratio {fill}");
    // Every fulfilled request recorded one latency observation (the
    // histogram only exists when the record path is compiled in).
    #[cfg(feature = "metrics")]
    {
        let latency = metrics.histogram("pool", "latency_ns").unwrap();
        assert_eq!(latency.count, 10);
        assert!(latency.percentile(0.5) > 0);
    }
    #[cfg(not(feature = "metrics"))]
    assert!(metrics.histogram("pool", "latency_ns").is_none());
}

#[test]
fn metrics_surface_pool_health() {
    // The health board is part of the telemetry surface: a stats
    // consumer (the `--metrics-out` artifact, the RPC `stats` endpoint)
    // must see the aggregate verdict and shard-state counts without
    // calling `Pool::health()` itself.
    let mut builder = Pool::builder().threads(2).width(LaneWidth::W1).seed_u64(9);
    let profile = builder.profile(&test_spec()).expect("profile");
    let pool = builder.spawn();
    pool.submit(SampleRequest { profile, count: 4 })
        .unwrap()
        .wait()
        .unwrap();
    let metrics = pool.metrics();
    assert_eq!(metrics.label("pool", "health"), Some("ok"));
    assert_eq!(metrics.counter("pool", "shards_alive"), Some(2));
    assert_eq!(metrics.counter("pool", "shards_restarting"), Some(0));
    assert_eq!(metrics.counter("pool", "shards_dead"), Some(0));
    // The aggregate agrees with the health board it summarizes.
    assert!(pool.health().all_alive());
}

#[test]
fn foreign_profile_ids_are_rejected() {
    // Profile ids are bound to the pool that minted them. An id from
    // another pool must be rejected even when its index is in range —
    // silently serving whatever profile shares the index would hand the
    // caller samples from the wrong distribution.
    let mut other = Pool::builder().seed_u64(2);
    let same_index: ProfileId = other.profile(&SamplerSpec::new("2", 12)).expect("other 0");
    let out_of_range = other.profile(&test_spec()).expect("other 1");

    let mut builder = Pool::builder().seed_u64(1);
    let _ = builder.profile(&test_spec()).expect("profile");
    let pool = builder.spawn();
    for foreign in [same_index, out_of_range] {
        let bogus = SampleRequest {
            profile: foreign,
            count: 1,
        };
        assert_eq!(pool.submit(bogus).err(), Some(PoolError::UnknownProfile));
    }
}

#[test]
fn shutdown_rejects_new_requests_and_drains_old_ones() {
    let mut builder = Pool::builder().threads(2).seed_u64(5);
    let profile = builder.profile(&test_spec()).expect("profile");
    let pool = builder.spawn();
    let pending: Vec<_> = (0..8)
        .map(|i| {
            pool.submit(SampleRequest {
                profile,
                count: 100 + i,
            })
            .unwrap()
        })
        .collect();
    pool.shutdown();
    // Everything submitted before shutdown is delivered...
    for (i, t) in pending.into_iter().enumerate() {
        assert_eq!(t.wait().unwrap().samples.len(), 100 + i);
    }
    // ...and nothing after it is accepted.
    assert_eq!(
        pool.submit(SampleRequest { profile, count: 1 }).err(),
        Some(PoolError::ShuttingDown)
    );
}

#[test]
fn multiple_profiles_route_independently() {
    let mut builder = Pool::builder().threads(2).seed_u64(11);
    let narrow = builder.profile(&test_spec()).expect("narrow");
    let wide = builder
        .profile(&SamplerSpec::new("6.15543", 16))
        .expect("wide");
    let pool = builder.spawn();
    let a = pool.sample_vec(narrow, 4096).unwrap();
    let b = pool.sample_vec(wide, 4096).unwrap();
    let spread = |v: &[i32]| {
        let n = v.len() as f64;
        let mean: f64 = v.iter().map(|&s| f64::from(s)).sum::<f64>() / n;
        v.iter()
            .map(|&s| (f64::from(s) - mean).powi(2))
            .sum::<f64>()
            / n
    };
    // sigma 2 vs sigma 6.15543: variances must reflect the profile.
    assert!((spread(&a) - 4.0).abs() < 1.0, "narrow var {}", spread(&a));
    assert!((spread(&b) - 37.9).abs() < 8.0, "wide var {}", spread(&b));
}

/// The satellite GOF requirement: 2^16 samples drawn through a 4-thread
/// pool must pass the same chi-square threshold the scalar pipeline test
/// uses (alpha = 0.001).
#[test]
fn pooled_output_passes_goodness_of_fit() {
    let spec = SamplerSpec::new("2", 24);
    let mut builder = Pool::builder()
        .threads(4)
        .width(LaneWidth::W4)
        .seed_u64(20_19);
    let profile = builder.profile(&spec).expect("profile");
    let pool = builder.spawn();

    // Mixed request sizes so the histogram aggregates over all four
    // worker streams and plenty of carry boundaries.
    let total: usize = 1 << 16;
    let sizes = [977usize, 64, 1500, 33, 4096, 250];
    let mut requested = 0;
    let mut tickets = Vec::new();
    let mut i = 0;
    while requested < total {
        let count = sizes[i % sizes.len()].min(total - requested);
        tickets.push(pool.submit(SampleRequest { profile, count }).unwrap());
        requested += count;
        i += 1;
    }
    let bound = 26; // ceil(tau * sigma) for sigma 2, tau 13
    let mut hist = Histogram::new(-bound, bound);
    for t in tickets {
        for s in t.wait().unwrap().samples {
            hist.add(s);
        }
    }
    assert_eq!(hist.total(), total as u64);
    assert_eq!(hist.outliers(), 0);
    let gof = chi_square_test(&hist, &discrete_gaussian_pmf(2.0, bound as u32));
    assert!(
        !gof.rejects_at(0.001),
        "pooled output failed GOF: chi2 = {:.2}, p = {:.5}",
        gof.statistic,
        gof.p_value
    );
}

#[test]
fn pooled_base_is_deterministic_across_identical_pools() {
    let make = || {
        let mut builder = Pool::builder().threads(2).seed_u64(77);
        let profile = builder.profile(&test_spec()).expect("profile");
        (builder.spawn(), profile)
    };
    let (pool_a, pa) = make();
    let (pool_b, pb) = make();
    let mut base_a = PooledBase::with_refill(&pool_a, pa, 100).unwrap();
    let mut base_b = PooledBase::with_refill(&pool_b, pb, 100).unwrap();
    for i in 0..500 {
        assert_eq!(base_a.next(), base_b.next(), "draw {i}");
    }
}

/// The Falcon signing path drawing its base Gaussian from the pool: the
/// signature must verify like any owned base sampler's.
#[test]
fn falcon_signs_through_the_pool() {
    let mut builder = Pool::builder().threads(2).width(LaneWidth::W8).seed_u64(30);
    let profile = builder
        .profile(&falcon_profile_spec())
        .expect("falcon profile");
    let pool = builder.spawn();

    let mut rng = ChaChaRng::from_u64_seed(40);
    let sk = SecretKey::generate(FalconParams::new(5), &mut rng).expect("keygen");
    let mut base = PooledBase::new(&pool, profile).unwrap();
    let msg = b"signed with pooled randomness";
    let sig = sk.sign(msg, &mut base, &mut rng).expect("signs");
    assert!(sk.public_key().verify(msg, &sig));
    assert!(
        pool.metrics().counter("pool", "samples_total").unwrap() > 0,
        "signing must have drawn from the pool"
    );
}
