//! The pool's determinism contract, tested end to end.
//!
//! 1. `threads = 1, W = 1` reproduces the scalar `CtSampler::sample_into`
//!    stream bit for bit over the worker's forked generator.
//! 2. Every `LaneWidth` produces the identical stream (the draw-order
//!    contract lifted to the service).
//! 3. Any `(threads, width)` is replayable: the full response set is a
//!    pure function of (seed, request trace), equal to a per-shard
//!    scalar simulation.

use std::sync::Arc;

use ctgauss_core::{CtSampler, SamplerSpec};
use ctgauss_pool::{
    replay_coalesced, replay_coalesced_clean, replay_trace, CoalesceConfig, FaultPlan, LaneWidth,
    Pool, PoolError, ProfileId, SampleRequest, TraceEntry, WaitError,
};
use ctgauss_prng::SeedTree;

/// A cheap-to-build profile for service-level tests.
fn test_spec() -> SamplerSpec {
    SamplerSpec::new("2", 16)
}

/// Request sizes exercising sub-batch, exact-batch, multi-batch and
/// carry-straddling counts (batch units are 64..512 depending on width).
const TRACE: [usize; 12] = [10, 0, 54, 64, 100, 1, 513, 63, 256, 7, 300, 128];

fn pool_with(threads: usize, width: LaneWidth, seed: u64) -> (Pool, ProfileId) {
    let mut builder = Pool::builder().threads(threads).width(width).seed_u64(seed);
    let profile = builder.profile(&test_spec()).expect("profile builds");
    (builder.spawn(), profile)
}

/// Runs the trace through a pool and returns each response's samples, in
/// submission order.
fn run_trace(pool: &Pool, profile: ProfileId, trace: &[usize]) -> Vec<Vec<i32>> {
    let tickets: Vec<_> = trace
        .iter()
        .map(|&count| {
            pool.submit(SampleRequest { profile, count })
                .expect("submit")
        })
        .collect();
    tickets
        .into_iter()
        .map(|t| t.wait().expect("response").samples)
        .collect()
}

#[test]
fn single_thread_pool_reproduces_scalar_sample_into() {
    let seed = 2024;
    let (pool, profile) = pool_with(1, LaneWidth::W1, seed);
    let responses = run_trace(&pool, profile, &TRACE);
    let pooled: Vec<i32> = responses.concat();

    // The scalar reference: one sample_into call of the total length over
    // the same forked stream the single worker owns.
    let sampler = test_spec().builder().build().expect("builds");
    let mut rng = SeedTree::from_u64_seed(seed).fork_chacha(0);
    let mut reference = vec![0i32; TRACE.iter().sum()];
    sampler.sample_into(&mut reference, &mut rng);

    assert_eq!(
        pooled, reference,
        "pool(threads=1, W=1) != scalar sample_into"
    );
    for (i, (r, &count)) in responses.iter().zip(&TRACE).enumerate() {
        assert_eq!(r.len(), count, "request {i} length");
    }
}

#[test]
fn every_lane_width_produces_the_same_stream() {
    let reference = {
        let (pool, profile) = pool_with(1, LaneWidth::W1, 7);
        run_trace(&pool, profile, &TRACE)
    };
    for width in [LaneWidth::W2, LaneWidth::W4, LaneWidth::W8] {
        let (pool, profile) = pool_with(1, width, 7);
        assert_eq!(
            run_trace(&pool, profile, &TRACE),
            reference,
            "width {width:?} diverged from W1"
        );
    }
}

/// Deterministically expands a seed into a 1000-request trace. Sizes mix
/// zero-length, sub-batch, exact-batch and multi-batch counts so every
/// width's carry coalescer is straddled many times.
fn thousand_request_trace(seed: u64) -> Vec<usize> {
    let mut state = seed | 1;
    let mut next = move || {
        state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    };
    (0..1000)
        .map(|_| match next() % 8 {
            0 => 0,
            1 => (next() % 64) as usize,         // sub-batch
            2 => 64 * (1 + next() % 8) as usize, // whole batches
            3 => 513,                            // straddles every width
            _ => (next() % 200) as usize,
        })
        .collect()
}

/// The recorded 1k-request regression trace: replayed with the worker
/// backend forced (via `LaneWidth`, which the worker maps onto the widest
/// available backend of that exact width) to every lane width, every
/// response must be bit-identical to the scalar `W1` recording — and a
/// second pool at the same width must reproduce it exactly (replay).
#[test]
fn thousand_request_trace_replays_bit_exactly_at_every_lane_width() {
    let seed = 31337;
    let trace = thousand_request_trace(0xD1FF_5EED);
    let reference = {
        let (pool, profile) = pool_with(1, LaneWidth::W1, seed);
        run_trace(&pool, profile, &trace)
    };
    for width in [LaneWidth::W1, LaneWidth::W2, LaneWidth::W4, LaneWidth::W8] {
        let (pool, profile) = pool_with(1, width, seed);
        let replay = run_trace(&pool, profile, &trace);
        assert_eq!(
            replay.len(),
            reference.len(),
            "width {width:?} response count"
        );
        for (seq, (got, want)) in replay.iter().zip(&reference).enumerate() {
            assert_eq!(got, want, "width {width:?} diverged at request seq {seq}");
        }
    }
}

#[test]
fn multi_thread_pool_is_replayable() {
    for threads in [2usize, 3, 4] {
        let (pool_a, profile_a) = pool_with(threads, LaneWidth::W4, 99);
        let (pool_b, profile_b) = pool_with(threads, LaneWidth::W4, 99);
        let a = run_trace(&pool_a, profile_a, &TRACE);
        let b = run_trace(&pool_b, profile_b, &TRACE);
        assert_eq!(a, b, "replay diverged at {threads} threads");
    }
}

#[test]
fn sharded_responses_match_per_shard_scalar_simulation() {
    let threads = 3;
    let seed = 555;
    let (pool, profile) = pool_with(threads, LaneWidth::W2, seed);
    let responses = run_trace(&pool, profile, &TRACE);

    // Simulate each shard: requests are assigned round-robin by sequence
    // number, and a shard's concatenated output is one scalar
    // sample_into over its forked stream.
    let sampler = test_spec().builder().build().expect("builds");
    let seeds = SeedTree::from_u64_seed(seed);
    for w in 0..threads {
        let shard_requests: Vec<(usize, usize)> = TRACE
            .iter()
            .enumerate()
            .filter(|(seq, _)| seq % threads == w)
            .map(|(seq, &count)| (seq, count))
            .collect();
        let total: usize = shard_requests.iter().map(|&(_, c)| c).sum();
        let mut rng = seeds.fork_chacha(w as u64);
        let mut stream = vec![0i32; total];
        sampler.sample_into(&mut stream, &mut rng);
        let mut offset = 0;
        for (seq, count) in shard_requests {
            assert_eq!(
                responses[seq],
                stream[offset..offset + count],
                "shard {w}, request seq {seq}"
            );
            offset += count;
        }
    }
}

/// The determinism contract under failure: a worker panic mid-trace must
/// not cost the run its replayability. The pool records the death in its
/// failure log; `replay_trace(seed, trace, failure_log)` —
/// single-threaded, no pool — must then reproduce every fulfilled
/// response bit for bit and predict exactly which requests were
/// abandoned. Checked at two lane widths: each width's live run matches
/// *its own* replay (the abandonment pattern is allowed to differ
/// between runs; the triple pins it).
#[test]
fn crashed_run_replays_bit_exactly_from_its_failure_log() {
    let seed = 606;
    let threads = 3;
    let trace: Vec<usize> = thousand_request_trace(0xBADC_0FFE)
        .into_iter()
        .take(300)
        .collect();
    for width in [LaneWidth::W1, LaneWidth::W4] {
        let mut builder = Pool::builder()
            .threads(threads)
            .width(width)
            .seed_u64(seed)
            .faults(FaultPlan::new().panic_at_batch(1, 6));
        let profile = builder.profile(&test_spec()).expect("profile builds");
        let pool = builder.spawn();

        let tickets: Vec<_> = trace
            .iter()
            .map(|&count| pool.submit(SampleRequest { profile, count }))
            .collect();
        let live: Vec<Option<Vec<i32>>> = tickets
            .into_iter()
            .map(|ticket| {
                let ticket = ticket.expect("no shard is ever retired here");
                match ticket.wait_timeout(std::time::Duration::from_secs(30)) {
                    Ok(response) => Some(response.samples),
                    Err(WaitError::Pool(PoolError::WorkerGone)) => None,
                    Err(other) => panic!("ticket must resolve, got {other:?}"),
                }
            })
            .collect();
        pool.shutdown();

        let failures = pool.failure_log();
        assert_eq!(failures.len(), 1, "exactly one injected death ({width:?})");
        assert_eq!(failures[0].worker, 1);
        let entries: Vec<TraceEntry> = trace
            .iter()
            .map(|&count| TraceEntry {
                profile_index: 0,
                count,
            })
            .collect();
        let profiles = [test_spec().build_shared().expect("profile builds")];
        let replayed = replay_trace(
            &SeedTree::from_u64_seed(seed),
            &profiles,
            threads,
            width,
            &entries,
            &failures,
        );
        for (seq, (got, want)) in live.iter().zip(&replayed).enumerate() {
            assert_eq!(got, want, "width {width:?} diverged at request seq {seq}");
        }
    }
}

// ---------------------------------------------------------------------
// Coalescing (v2) determinism: dispatch-log replay, trace-only clean
// replay, passthrough equivalence, stealing, and chaos.
// ---------------------------------------------------------------------

/// The specs the v2 tests register, in index order.
fn v2_specs() -> [SamplerSpec; 2] {
    [SamplerSpec::new("2", 16), SamplerSpec::new("1.5", 16)]
}

fn v2_profiles() -> Vec<Arc<CtSampler>> {
    v2_specs()
        .iter()
        .map(|spec| spec.build_shared().expect("profile builds"))
        .collect()
}

/// A deterministic tiny-request mixed-profile trace: counts 1..=16,
/// profiles alternating pseudo-randomly — the workload coalescing
/// exists for.
fn tiny_mixed_trace(seed: u64, len: usize) -> Vec<TraceEntry> {
    let mut state = seed | 1;
    let mut next = move || {
        state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    };
    (0..len)
        .map(|_| TraceEntry {
            profile_index: (next() % 2) as usize,
            count: 1 + (next() % 16) as usize,
        })
        .collect()
}

fn v2_pool(
    threads: usize,
    width: LaneWidth,
    seed: u64,
    cfg: CoalesceConfig,
) -> (Pool, Vec<ProfileId>) {
    let mut builder = Pool::builder()
        .threads(threads)
        .width(width)
        .seed_u64(seed)
        .coalesce(cfg);
    let ids = v2_specs()
        .iter()
        .map(|spec| builder.profile(spec).expect("profile builds"))
        .collect();
    (builder.spawn(), ids)
}

/// Submits the trace and waits every ticket out, `None` where the pool
/// answered `WorkerGone`.
fn run_v2_trace(pool: &Pool, ids: &[ProfileId], trace: &[TraceEntry]) -> Vec<Option<Vec<i32>>> {
    let tickets: Vec<_> = trace
        .iter()
        .map(|entry| {
            pool.submit(SampleRequest {
                profile: ids[entry.profile_index],
                count: entry.count,
            })
            .expect("v2 submission stages")
        })
        .collect();
    tickets
        .into_iter()
        .map(
            |ticket| match ticket.wait_timeout(std::time::Duration::from_secs(30)) {
                Ok(response) => Some(response.samples),
                Err(WaitError::Pool(PoolError::WorkerGone)) => None,
                Err(other) => panic!("ticket must resolve, got {other:?}"),
            },
        )
        .collect()
}

/// The tentpole contract: a coalesced run — requests ganged across
/// submissions, served batch-at-a-time — replays bit-exactly from
/// (seed, trace, width, dispatch log), at more than one width, and the
/// trace-only clean replay agrees too.
#[test]
fn coalesced_tiny_requests_replay_bit_exactly_from_dispatch_log() {
    let seed = 7171;
    let threads = 2;
    let trace = tiny_mixed_trace(0xC0A1_E5CE, 400);
    for width in [LaneWidth::W1, LaneWidth::W4] {
        let (pool, ids) = v2_pool(
            threads,
            width,
            seed,
            CoalesceConfig {
                steal: false,
                ..CoalesceConfig::default()
            },
        );
        let live = run_v2_trace(&pool, &ids, &trace);
        pool.shutdown();
        assert!(pool.failure_log().is_empty(), "clean run");

        // Coalescing actually happened: fewer gangs than members.
        let metrics = pool.metrics();
        let gangs = metrics.counter("pool", "gangs_flushed").unwrap();
        let members = metrics.counter("pool", "gang_members_flushed").unwrap();
        assert_eq!(members, trace.len() as u64);
        assert!(
            gangs < members,
            "width {width:?}: {gangs} gangs for {members} members — nothing coalesced"
        );

        let dispatch = pool.dispatch_log();
        let profiles = v2_profiles();
        let replayed = replay_coalesced(
            &SeedTree::from_u64_seed(seed),
            &profiles,
            width,
            &trace,
            &pool.failure_log(),
            &dispatch,
        );
        for (seq, (got, want)) in live.iter().zip(&replayed).enumerate() {
            assert_eq!(got, want, "width {width:?} diverged at seq {seq}");
        }

        // Clean run, stealing off: the trace-only replay (what an
        // offline verifier without server logs uses) agrees too.
        let clean = replay_coalesced_clean(
            &SeedTree::from_u64_seed(seed),
            &profiles,
            threads,
            width,
            &trace,
        );
        for (seq, (got, want)) in live.iter().zip(&clean).enumerate() {
            assert_eq!(
                got.as_ref(),
                Some(want),
                "width {width:?} clean replay diverged at seq {seq}"
            );
        }
    }
}

/// Coalescing must change latency, not values: at one thread, a
/// passthrough run (staging disabled, same v2 stream layout) delivers
/// bit-identical per-request samples to a coalesced run of the same
/// trace.
#[test]
fn passthrough_matches_coalesced_at_one_thread() {
    let seed = 909;
    let trace = tiny_mixed_trace(0xFADE, 300);
    let (pool, ids) = v2_pool(1, LaneWidth::W4, seed, CoalesceConfig::default());
    let coalesced = run_v2_trace(&pool, &ids, &trace);
    let (pool, ids) = v2_pool(1, LaneWidth::W4, seed, CoalesceConfig::passthrough());
    let passthrough = run_v2_trace(&pool, &ids, &trace);
    for (seq, (a, b)) in coalesced.iter().zip(&passthrough).enumerate() {
        assert_eq!(a, b, "coalesced vs passthrough diverged at seq {seq}");
    }
}

/// Work stealing: a hot profile backs up its home shard, the idle
/// sibling steals — and because the dispatch log records who served
/// what, the run still replays bit-exactly. A stall fault pins worker 0
/// mid-serve so the steal is guaranteed, not scheduling luck.
#[test]
fn stolen_gangs_are_recorded_and_replay_bit_exactly() {
    let seed = 5150;
    let threads = 2;
    // Every request on profile 0 → home shard 0; worker 0 stalls on its
    // first member while the rest of the trace queues behind it.
    let trace: Vec<TraceEntry> = (0..40)
        .map(|_| TraceEntry {
            profile_index: 0,
            count: 64,
        })
        .collect();
    let mut builder = Pool::builder()
        .threads(threads)
        .width(LaneWidth::W1)
        .seed_u64(seed)
        .coalesce(CoalesceConfig::default())
        .faults(FaultPlan::new().stall_at_request(0, 1, std::time::Duration::from_millis(300)));
    let ids: Vec<ProfileId> = v2_specs()
        .iter()
        .map(|spec| builder.profile(spec).expect("profile builds"))
        .collect();
    let pool = builder.spawn();

    // Submit the first request alone and wait for worker 0 to claim it
    // (queue drained): the stall then pins worker 0 *mid-serve* with an
    // empty claim buffer, so everything submitted next queues on ring 0
    // where the idle worker 1 finds it.
    let first = pool
        .submit(SampleRequest {
            profile: ids[0],
            count: trace[0].count,
        })
        .expect("submit");
    while pool
        .metrics()
        .gauge("pool_shards", "shard0_queue_depth")
        .unwrap()
        > 0.0
    {
        std::thread::yield_now();
    }
    let rest: Vec<_> = trace[1..]
        .iter()
        .map(|entry| {
            pool.submit(SampleRequest {
                profile: ids[entry.profile_index],
                count: entry.count,
            })
            .expect("submit")
        })
        .collect();
    let mut live = vec![Some(
        first
            .wait_timeout(std::time::Duration::from_secs(30))
            .expect("served")
            .samples,
    )];
    live.extend(rest.into_iter().map(|ticket| {
        Some(
            ticket
                .wait_timeout(std::time::Duration::from_secs(30))
                .expect("served")
                .samples,
        )
    }));
    pool.shutdown();
    assert!(pool.failure_log().is_empty(), "a stall is not a death");
    assert!(
        pool.steals() > 0,
        "worker 1 must have stolen from the stalled shard 0"
    );
    let dispatch = pool.dispatch_log();
    assert!(
        dispatch[1].iter().any(|record| record.home == 0),
        "the dispatch log attributes stolen gangs to the thief"
    );

    let replayed = replay_coalesced(
        &SeedTree::from_u64_seed(seed),
        &v2_profiles(),
        LaneWidth::W1,
        &trace,
        &pool.failure_log(),
        &dispatch,
    );
    for (seq, (got, want)) in live.iter().zip(&replayed).enumerate() {
        assert_eq!(got, want, "stolen run diverged at seq {seq}");
    }
}

/// Chaos: a worker panic mid-run (restart epoch) must leave the
/// coalesced run reconstructible from (seed, trace, width, failure log,
/// dispatch log) — abandoned gang members land on `None` exactly as the
/// live tickets resolved.
#[test]
fn coalesced_chaos_run_replays_from_failure_and_dispatch_logs() {
    let seed = 6007;
    let threads = 2;
    let trace = tiny_mixed_trace(0xDEAD_BEEF, 300);
    let mut builder = Pool::builder()
        .threads(threads)
        .width(LaneWidth::W1)
        .seed_u64(seed)
        .coalesce(CoalesceConfig {
            steal: false,
            ..CoalesceConfig::default()
        })
        .faults(FaultPlan::new().panic_at_batch(0, 4));
    let ids: Vec<ProfileId> = v2_specs()
        .iter()
        .map(|spec| builder.profile(spec).expect("profile builds"))
        .collect();
    let pool = builder.spawn();

    let live = run_v2_trace(&pool, &ids, &trace);
    pool.shutdown();
    let failures = pool.failure_log();
    assert_eq!(failures.len(), 1, "exactly one injected death");
    assert_eq!(failures[0].worker, 0);
    let abandoned = live.iter().filter(|r| r.is_none()).count();
    assert!(abandoned >= 1, "the panicking gang was abandoned");

    let replayed = replay_coalesced(
        &SeedTree::from_u64_seed(seed),
        &v2_profiles(),
        LaneWidth::W1,
        &trace,
        &failures,
        &pool.dispatch_log(),
    );
    for (seq, (got, want)) in live.iter().zip(&replayed).enumerate() {
        assert_eq!(got, want, "chaos coalesced run diverged at seq {seq}");
    }
}

#[test]
fn distinct_workers_draw_distinct_streams() {
    // Two equal-size requests land on workers 0 and 1; their samples must
    // come from different forked streams (overwhelmingly: 256 samples).
    let (pool, profile) = pool_with(2, LaneWidth::W1, 1);
    let a = pool.sample_vec(profile, 256).expect("worker 0");
    let b = pool.sample_vec(profile, 256).expect("worker 1");
    assert_ne!(a, b, "worker streams must be independent");
}

#[test]
fn seed_changes_the_streams() {
    let (pool_a, profile_a) = pool_with(1, LaneWidth::W4, 1);
    let (pool_b, profile_b) = pool_with(1, LaneWidth::W4, 2);
    assert_ne!(
        pool_a.sample_vec(profile_a, 256).expect("a"),
        pool_b.sample_vec(profile_b, 256).expect("b"),
    );
}
