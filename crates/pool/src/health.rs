//! Observability for the supervised pool: per-shard health and the
//! failure log that completes the replay triple.
//!
//! The pool's determinism contract says every response is a pure
//! function of (seed, request trace). Worker failures would void that —
//! unless every failure is *recorded* precisely enough to replay. The
//! [`FailureLog`] is that record: for each worker death it captures the
//! epoch that ended, how many requests that shard had fulfilled, which
//! submission sequence numbers were abandoned (their tickets resolved to
//! `WorkerGone`), and whether the shard was resurrected into a fresh
//! epoch stream or degraded for good. **(seed, trace, failure-log)** is
//! a complete replay triple — see [`replay_trace`](crate::replay_trace).
//!
//! [`Pool::health`](crate::Pool::health) snapshots the live view: which
//! shards are serving, restarting, or dead, and how much work each
//! failure cost.

use std::sync::Mutex;

use crate::ring::lock_recover;

/// Liveness of one shard's worker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardState {
    /// The worker is serving; its stream is `fork_chacha_epoch(w, epoch)`
    /// (epoch 0 is the canonical `fork_chacha(w)` stream).
    Alive {
        /// The epoch whose stream the worker draws from.
        epoch: u64,
    },
    /// The worker died; the supervisor is in the restart backoff window
    /// before spawning the replacement for `epoch`.
    Restarting {
        /// The epoch the replacement will draw from.
        epoch: u64,
    },
    /// The restart budget is exhausted (or the pool shut down while the
    /// worker was down): the shard's ring is closed and every submission
    /// routed to it fails with
    /// [`PoolError::WorkerGone`](crate::PoolError::WorkerGone).
    Dead,
}

/// Health snapshot of one shard (see [`Pool::health`](crate::Pool::health)).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardHealth {
    /// Current liveness.
    pub state: ShardState,
    /// How many times this shard's worker has been resurrected.
    pub restarts: u32,
    /// Requests abandoned by this shard's failures so far (their tickets
    /// resolved to `WorkerGone`).
    pub abandoned: u64,
}

/// Health snapshot of the whole pool.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PoolHealth {
    /// Per-shard health, indexed by worker/shard number.
    pub shards: Vec<ShardHealth>,
}

impl PoolHealth {
    /// Whether every shard is `Alive`.
    pub fn all_alive(&self) -> bool {
        self.shards
            .iter()
            .all(|s| matches!(s.state, ShardState::Alive { .. }))
    }

    /// Total restarts across shards.
    pub fn restarts(&self) -> u64 {
        self.shards.iter().map(|s| u64::from(s.restarts)).sum()
    }

    /// Total abandoned requests across shards.
    pub fn abandoned(&self) -> u64 {
        self.shards.iter().map(|s| s.abandoned).sum()
    }
}

/// How a worker death was resolved.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FailureOutcome {
    /// A replacement worker was spawned on the shard, drawing from the
    /// fresh domain-separated stream `fork_chacha_epoch(worker, new_epoch)`
    /// with the dead worker's carry discarded.
    Restarted {
        /// The epoch the replacement draws from.
        new_epoch: u64,
    },
    /// The restart budget was exhausted: the shard is dead, its ring
    /// closed and purged. Every later submission routed to it fails with
    /// `WorkerGone`.
    Exhausted,
    /// The pool was already shutting down, so no replacement was spawned.
    ShuttingDown,
}

/// One worker death, as recorded by the supervisor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FailureEvent {
    /// The shard whose worker died.
    pub worker: usize,
    /// The epoch whose stream ended with this death.
    pub epoch: u64,
    /// The shard's *lifetime* fulfilled-request count at death — in
    /// replay, the first `fulfilled` of the shard's sequence numbers were
    /// served normally (across all epochs so far) before this failure.
    pub fulfilled: u64,
    /// Submission sequence numbers abandoned by this death (claimed but
    /// unserved jobs; plus, on budget exhaustion, everything purged from
    /// the ring). Their tickets resolved to `WorkerGone`. Sorted.
    pub abandoned: Vec<u64>,
    /// Whether the shard was resurrected, exhausted, or shut down.
    pub outcome: FailureOutcome,
    /// The panic payload, as text — diagnostic only, not replay-relevant.
    pub cause: String,
}

/// The append-only record of worker deaths (see the module docs).
/// Snapshot with [`Pool::failure_log`](crate::Pool::failure_log); the log
/// is complete (all deaths processed, all abandoned seqs attributed) once
/// [`Pool::shutdown`](crate::Pool::shutdown) has returned.
#[derive(Debug, Default)]
pub(crate) struct FailureLog {
    events: Mutex<Vec<FailureEvent>>,
}

impl FailureLog {
    pub(crate) fn record(&self, event: FailureEvent) {
        lock_recover(&self.events).push(event);
    }

    pub(crate) fn snapshot(&self) -> Vec<FailureEvent> {
        lock_recover(&self.events).clone()
    }
}

/// Per-shard collector of abandoned submission sequence numbers.
///
/// A [`Job`](crate::worker::Job) dropped unfulfilled records its seq here
/// (right after resolving its ticket to `WorkerGone`); the supervisor
/// drains the collector — after joining the dead worker, so every record
/// from the unwinding thread is visible — into the [`FailureEvent`].
#[derive(Debug, Default)]
pub(crate) struct AbandonLog {
    seqs: Mutex<Vec<u64>>,
}

impl AbandonLog {
    pub(crate) fn record(&self, seq: u64) {
        lock_recover(&self.seqs).push(seq);
    }

    pub(crate) fn drain(&self) -> Vec<u64> {
        let mut seqs = std::mem::take(&mut *lock_recover(&self.seqs));
        seqs.sort_unstable();
        seqs
    }
}

/// The live, supervisor-maintained health state behind [`PoolHealth`]
/// snapshots.
#[derive(Debug)]
pub(crate) struct HealthBoard {
    shards: Vec<Mutex<ShardHealth>>,
}

impl HealthBoard {
    pub(crate) fn new(threads: usize) -> Self {
        HealthBoard {
            shards: (0..threads)
                .map(|_| {
                    Mutex::new(ShardHealth {
                        state: ShardState::Alive { epoch: 0 },
                        restarts: 0,
                        abandoned: 0,
                    })
                })
                .collect(),
        }
    }

    pub(crate) fn snapshot(&self) -> PoolHealth {
        PoolHealth {
            shards: self
                .shards
                .iter()
                .map(|s| lock_recover(s).clone())
                .collect(),
        }
    }

    /// The epoch the shard is (or will next be) serving from.
    pub(crate) fn epoch(&self, worker: usize) -> u64 {
        match lock_recover(&self.shards[worker]).state {
            ShardState::Alive { epoch } | ShardState::Restarting { epoch } => epoch,
            ShardState::Dead => 0,
        }
    }

    pub(crate) fn restarts(&self, worker: usize) -> u32 {
        lock_recover(&self.shards[worker]).restarts
    }

    pub(crate) fn set_state(&self, worker: usize, state: ShardState) {
        lock_recover(&self.shards[worker]).state = state;
    }

    pub(crate) fn note_restart(&self, worker: usize, abandoned: u64) {
        let mut shard = lock_recover(&self.shards[worker]);
        shard.restarts += 1;
        shard.abandoned += abandoned;
    }

    pub(crate) fn note_abandoned(&self, worker: usize, abandoned: u64) {
        lock_recover(&self.shards[worker]).abandoned += abandoned;
    }
}
