//! Client-side retry with backoff over the timed submission path.
//!
//! [`Pool::submit_timeout`](crate::Pool::submit_timeout) guarantees that
//! a refused submission consumed nothing — no ring slot, no sequence
//! number — so retrying it is always sound. This module is the loop a
//! bounded-latency client wants around it: retry the *transient*
//! refusals ([`PoolError::TimedOut`], [`PoolError::Backpressure`]) with
//! exponential backoff, pass the final ones (`WorkerGone`,
//! `ShuttingDown`, `UnknownProfile`) straight through. The
//! `pool_server` front end drives all its chaos-mode traffic through
//! this helper.

use std::time::Duration;

use crate::pool::{Pool, PoolError, SampleRequest, Ticket};

/// Attempt budget and backoff schedule for [`submit_with_retry`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total submission attempts (including the first); must be ≥ 1.
    pub attempts: u32,
    /// Deadline handed to each `submit_timeout` attempt.
    pub submit_timeout: Duration,
    /// Pause after the first refused attempt; doubles per retry.
    pub backoff_base: Duration,
    /// Upper bound on the pause.
    pub backoff_max: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            attempts: 5,
            submit_timeout: Duration::from_millis(200),
            backoff_base: Duration::from_millis(2),
            backoff_max: Duration::from_millis(50),
        }
    }
}

/// Submits `request`, retrying transient refusals (deadline elapsed,
/// backpressure) under `policy`. A retry reuses the same would-be
/// sequence number — `submit_timeout` consumes nothing on refusal — so
/// the request→shard map, and with it replayability, is unaffected by
/// how many attempts it took.
///
/// # Errors
///
/// The last transient error once the attempt budget is spent, or the
/// first final error ([`PoolError::WorkerGone`],
/// [`PoolError::ShuttingDown`], [`PoolError::UnknownProfile`])
/// immediately — those will not get better by waiting.
///
/// # Panics
///
/// Panics if `policy.attempts` is zero.
pub fn submit_with_retry(
    pool: &Pool,
    request: SampleRequest,
    policy: &RetryPolicy,
) -> Result<Ticket, PoolError> {
    assert!(
        policy.attempts > 0,
        "retry policy needs at least one attempt"
    );
    let mut delay = policy.backoff_base;
    let mut attempt = 0;
    loop {
        match pool.submit_timeout(request, policy.submit_timeout) {
            Ok(ticket) => return Ok(ticket),
            Err(error @ (PoolError::TimedOut | PoolError::Backpressure)) => {
                attempt += 1;
                if attempt >= policy.attempts {
                    return Err(error);
                }
                std::thread::sleep(delay);
                delay = delay.saturating_mul(2).min(policy.backoff_max);
            }
            Err(error) => return Err(error),
        }
    }
}
