//! Worker threads: coalesced batch execution over one forked stream.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use ctgauss_core::{Backend, CtSampler, LaneScratch};
use ctgauss_prng::ChaChaRng;

use crate::pool::{Completion, LaneWidth, SampleRequest};
use crate::ring::Ring;

/// How many queued requests a worker claims per ring pass. Requests are
/// served strictly in FIFO order either way; claiming a run of them just
/// amortizes the ring lock.
const CLAIM: usize = 64;

/// One queued request plus its response slot. If the job is dropped
/// unfulfilled (worker panic unwinding), the waiting ticket is released
/// with [`PoolError::WorkerGone`](crate::PoolError::WorkerGone) instead
/// of hanging.
#[derive(Debug)]
pub(crate) struct Job {
    request: SampleRequest,
    /// Pool-wide submission sequence number, echoed back on fulfillment
    /// so response auditing is end to end (a completion delivered by the
    /// wrong job carries the wrong seq and is caught by the front end).
    seq: u64,
    completion: Arc<Completion>,
    fulfilled: bool,
}

impl Job {
    pub(crate) fn new(request: SampleRequest, seq: u64, completion: Arc<Completion>) -> Self {
        Job {
            request,
            seq,
            completion,
            fulfilled: false,
        }
    }

    fn fulfill(mut self, samples: Vec<i32>) {
        self.completion.fulfill(self.seq, samples);
        self.fulfilled = true;
    }
}

impl Drop for Job {
    fn drop(&mut self) {
        if !self.fulfilled {
            self.completion.abandon();
        }
    }
}

/// Lock-free per-worker counters, shared with [`Pool::stats`](crate::Pool::stats).
#[derive(Debug, Default)]
pub(crate) struct WorkerStats {
    requests: AtomicU64,
    samples: AtomicU64,
    batches: AtomicU64,
}

impl WorkerStats {
    pub(crate) fn requests(&self) -> u64 {
        self.requests.load(Ordering::Relaxed)
    }

    pub(crate) fn samples(&self) -> u64 {
        self.samples.load(Ordering::Relaxed)
    }

    pub(crate) fn batches(&self) -> u64 {
        self.batches.load(Ordering::Relaxed)
    }
}

/// Closes (and purges) the shard ring when its worker exits for *any*
/// reason. On graceful shutdown the ring is already closed and drained,
/// so this is a no-op; if the worker panics it unblocks producers
/// (submission fails with `WorkerGone` instead of parking forever on a
/// ring nobody consumes — which would deadlock the pool-wide submission
/// lock) and abandons queued jobs so their tickets also resolve to
/// `WorkerGone`.
struct ShardCloser(Arc<Ring<Job>>);

impl Drop for ShardCloser {
    fn drop(&mut self) {
        self.0.close_and_purge();
    }
}

/// Spawns worker `index` at the configured lane width. The width is
/// mapped onto the preferred available SIMD [`Backend`] of that exact
/// width (`CTGAUSS_FORCE_BACKEND` wins when it matches), so `LaneWidth`
/// keeps its meaning — batch units of `64 * W` samples — while the
/// kernel runs on real vector registers where the CPU has them. The
/// draw-order contract keeps the response streams identical across
/// backends of the same width (and, via the carry coalescer, across
/// widths too).
pub(crate) fn spawn_worker(
    index: usize,
    width: LaneWidth,
    shard: Arc<Ring<Job>>,
    profiles: Arc<[Arc<CtSampler>]>,
    rng: ChaChaRng,
    stats: Arc<WorkerStats>,
) -> JoinHandle<()> {
    std::thread::Builder::new()
        .name(format!("ctgauss-pool-{index}"))
        .spawn(move || {
            let _closer = ShardCloser(Arc::clone(&shard));
            let backend = Backend::select_for_width(width.lanes());
            worker_loop(backend, &shard, &profiles, rng, &stats)
        })
        .expect("spawn pool worker")
}

/// Per-profile execution state: reusable kernel scratch plus the carry
/// of samples left over from the last partially-consumed batch. The
/// carry is what coalesces small requests — the kernel only ever runs
/// full `64 * W`-sample batches, and whatever a request does not consume
/// is handed to the next request on this shard, in draw order, with no
/// randomness discarded.
struct ProfileState {
    sampler: Arc<CtSampler>,
    scratch: LaneScratch,
    carry: VecDeque<i32>,
    /// Reused staging buffer for the final partial batch of a request.
    tail: Vec<i32>,
}

fn worker_loop(
    backend: Backend,
    shard: &Ring<Job>,
    profiles: &[Arc<CtSampler>],
    mut rng: ChaChaRng,
    stats: &WorkerStats,
) {
    let mut states: Vec<ProfileState> = profiles
        .iter()
        .map(|sampler| ProfileState {
            sampler: Arc::clone(sampler),
            scratch: sampler.lane_scratch_for(backend),
            carry: VecDeque::new(),
            tail: vec![0i32; 64 * backend.width()],
        })
        .collect();
    let mut jobs: Vec<Job> = Vec::with_capacity(CLAIM);
    // `pop_many` blocks for work and returns false only once the ring is
    // closed *and* drained, so shutdown never drops a queued request.
    while shard.pop_many(CLAIM, &mut jobs) {
        for job in jobs.drain(..) {
            let state = &mut states[job.request.profile.index];
            let samples = serve(state, &mut rng, job.request.count, stats);
            stats.requests.fetch_add(1, Ordering::Relaxed);
            stats
                .samples
                .fetch_add(samples.len() as u64, Ordering::Relaxed);
            job.fulfill(samples);
        }
    }
}

/// Fills one response: carry first, then whole kernel batches directly
/// into the response buffer, then (if needed) one final batch staged
/// through `tail` with the unused suffix pushed onto the carry.
fn serve(
    state: &mut ProfileState,
    rng: &mut ChaChaRng,
    count: usize,
    stats: &WorkerStats,
) -> Vec<i32> {
    let mut out = vec![0i32; count];
    // Drain the carry (leftovers of the previous request's last batch).
    let take = count.min(state.carry.len());
    for (slot, v) in out[..take].iter_mut().zip(state.carry.drain(..take)) {
        *slot = v;
    }
    let mut filled = take;
    let batch = 64 * state.scratch.width();
    while count - filled >= batch {
        state
            .sampler
            .sample_batch_lanes(rng, &mut state.scratch, &mut out[filled..filled + batch]);
        stats.batches.fetch_add(1, Ordering::Relaxed);
        filled += batch;
    }
    if filled < count {
        state
            .sampler
            .sample_batch_lanes(rng, &mut state.scratch, &mut state.tail);
        stats.batches.fetch_add(1, Ordering::Relaxed);
        let need = count - filled;
        out[filled..].copy_from_slice(&state.tail[..need]);
        debug_assert!(state.carry.is_empty(), "carry drained before refill");
        state.carry.extend(&state.tail[need..]);
    }
    out
}
