//! Worker threads: coalesced batch execution over deterministic streams.
//!
//! v1 served one request per [`Job`]; v2 generalizes the job to a
//! **gang** — one or more same-profile requests served by a single
//! engine pass and scattered back to their waiters in seq order. A v1
//! submission is simply a one-member gang, so both pool modes share one
//! ring type, one worker loop, and one serving engine.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use ctgauss_core::{Backend, CtSampler, LaneScratch};
use ctgauss_prng::{ChaChaRng, SeedTree};

use crate::coalesce::{DispatchLog, DispatchRecord};
use crate::fault::{ArmedFaults, FaultSite};
use crate::health::AbandonLog;
use crate::pool::{Completion, LaneWidth};
use crate::registry::ProfileSource;
use crate::ring::{PopWait, Ring};
use crate::supervisor::DeathNotice;

/// How many queued gangs a worker claims per ring pass. Gangs are served
/// strictly in FIFO order either way; claiming a run of them just
/// amortizes the ring lock.
const CLAIM: usize = 64;

/// How long a stealing worker parks on its own empty ring before
/// scanning sibling rings for work.
const STEAL_POLL: Duration = Duration::from_micros(500);

/// One request's slice of a gang: its response slot plus the sample
/// count it is owed. If the member is dropped unfulfilled (worker panic
/// unwinding, or a ring purge after budget exhaustion), the waiting
/// ticket is released with
/// [`PoolError::WorkerGone`](crate::PoolError::WorkerGone) instead of
/// hanging, and the seq is recorded in the serving shard's
/// [`AbandonLog`] so the failure log fully accounts for it.
#[derive(Debug)]
pub(crate) struct Member {
    /// Pool-wide submission sequence number, echoed back on fulfillment
    /// so response auditing is end to end (a completion delivered by the
    /// wrong member carries the wrong seq and is caught by the front
    /// end).
    pub(crate) seq: u64,
    pub(crate) count: usize,
    /// When the submitter created the member — the start of the
    /// submit-to-completion latency the serving worker records.
    #[cfg_attr(not(feature = "metrics"), allow(dead_code))]
    pub(crate) submitted_at: Instant,
    completion: Arc<Completion>,
    /// The abandon log of the shard currently responsible for the
    /// member. `None` while staged (no shard yet); set when the gang is
    /// enqueued on a ring, and re-tagged by a thief so a mid-serve panic
    /// attributes the loss to the shard that actually held the work.
    abandons: Option<Arc<AbandonLog>>,
    fulfilled: bool,
}

impl Member {
    pub(crate) fn new(
        seq: u64,
        count: usize,
        submitted_at: Instant,
        completion: Arc<Completion>,
    ) -> Self {
        Member {
            seq,
            count,
            submitted_at,
            completion,
            abandons: None,
            fulfilled: false,
        }
    }

    fn fulfill(&mut self, samples: Vec<i32>) {
        debug_assert_eq!(samples.len(), self.count);
        self.completion.fulfill(self.seq, samples);
        self.fulfilled = true;
    }

    /// Resolves the waiting ticket with an abandon *now* (shutdown path
    /// for staged members that no live ring would accept).
    pub(crate) fn abandon(mut self) {
        // Drop does the work; this method only names the intent.
        self.fulfilled = false;
    }
}

impl Drop for Member {
    fn drop(&mut self) {
        if !self.fulfilled {
            self.completion.abandon();
            if let Some(log) = &self.abandons {
                log.record(self.seq);
            }
        }
    }
}

/// One queued unit of work: a gang of same-profile members served by a
/// single engine pass over `total` samples, scattered to the members in
/// seq order on the way out.
#[derive(Debug)]
pub(crate) struct Job {
    pub(crate) profile_index: usize,
    /// The shard whose ring the gang was enqueued on. A gang served by a
    /// different worker was stolen.
    pub(crate) home: usize,
    pub(crate) members: Vec<Member>,
    pub(crate) total: usize,
}

impl Job {
    /// A v1 submission: a one-member gang.
    pub(crate) fn single(
        profile_index: usize,
        home: usize,
        mut member: Member,
        abandons: Arc<AbandonLog>,
    ) -> Self {
        member.abandons = Some(abandons);
        let total = member.count;
        Job {
            profile_index,
            home,
            members: vec![member],
            total,
        }
    }

    /// A coalesced gang. `members` must be in ascending seq order and
    /// share the profile.
    pub(crate) fn gang(profile_index: usize, home: usize, members: Vec<Member>) -> Self {
        debug_assert!(members.windows(2).all(|w| w[0].seq < w[1].seq));
        let total = members.iter().map(|m| m.count).sum();
        Job {
            profile_index,
            home,
            members,
            total,
        }
    }

    /// Points every member's abandon attribution at the shard now
    /// holding the gang, *without* touching `home` — the thief's hook.
    /// A stolen gang keeps its origin ring's identity: `home != serving
    /// shard` is exactly the steal marker the dispatch log records.
    pub(crate) fn adopt(&mut self, abandons: &Arc<AbandonLog>) {
        for member in &mut self.members {
            member.abandons = Some(Arc::clone(abandons));
        }
    }

    /// [`adopt`](Self::adopt) plus re-homing — called when a flush
    /// (re)routes the gang onto a ring: that ring's shard becomes the
    /// gang's home.
    pub(crate) fn retag(&mut self, home: usize, abandons: &Arc<AbandonLog>) {
        self.home = home;
        self.adopt(abandons);
    }

    /// Discards a job that was never accepted by a ring (a refused
    /// push): the submission failed synchronously, so neither the
    /// abandon log nor the ticket should hear about it.
    pub(crate) fn defuse(mut self) {
        for member in &mut self.members {
            member.fulfilled = true;
        }
    }

    /// Delivers `samples` to the members in order. A one-member gang
    /// hands the whole buffer over without copying.
    fn scatter(mut self, mut samples: Vec<i32>, stats: &WorkerStats) {
        #[cfg(not(feature = "metrics"))]
        let _ = stats;
        debug_assert_eq!(samples.len(), self.total);
        let last = self.members.len() - 1;
        for (i, member) in self.members.iter_mut().enumerate() {
            let part = if i == last {
                std::mem::take(&mut samples)
            } else {
                let rest = samples.split_off(member.count);
                std::mem::replace(&mut samples, rest)
            };
            #[cfg(feature = "metrics")]
            stats.latency.record_duration(member.submitted_at.elapsed());
            member.fulfill(part);
        }
    }
}

/// Lock-free per-worker counters, surfaced through
/// [`Pool::metrics`](crate::Pool::metrics).
///
/// The same instance is handed to every restart epoch of a worker, so
/// the counters are *lifetime* counters of the shard — which is what
/// makes fault triggers (`panic@w0.batch3`) and the failure log's
/// `fulfilled` field well-defined across resurrections. `requests`
/// counts gang *members* (i.e. submissions), not gangs, so its meaning
/// is unchanged from v1.
#[derive(Debug, Default)]
pub(crate) struct WorkerStats {
    requests: AtomicU64,
    samples: AtomicU64,
    batches: AtomicU64,
    /// Samples delivered by the serve that generated them (`count -
    /// carry_taken` per serve). `fresh / (batches * 64W)` is the
    /// *dispatch fill ratio*: how full kernel batches are with samples
    /// someone is actually waiting on — the metric coalescing moves.
    fresh: AtomicU64,
    /// Gangs this worker served from a sibling's ring.
    steals: AtomicU64,
    /// Submit-to-completion latency in nanoseconds, recorded at
    /// fulfillment. Lock-free and off the sample path (after the kernel
    /// ran, before the completion wakes the waiter); compiled out
    /// entirely without the `metrics` feature.
    #[cfg(feature = "metrics")]
    pub(crate) latency: ctgauss_telemetry::Histogram,
}

impl WorkerStats {
    pub(crate) fn requests(&self) -> u64 {
        self.requests.load(Ordering::Relaxed)
    }

    pub(crate) fn samples(&self) -> u64 {
        self.samples.load(Ordering::Relaxed)
    }

    pub(crate) fn batches(&self) -> u64 {
        self.batches.load(Ordering::Relaxed)
    }

    pub(crate) fn fresh(&self) -> u64 {
        self.fresh.load(Ordering::Relaxed)
    }

    pub(crate) fn steals(&self) -> u64 {
        self.steals.load(Ordering::Relaxed)
    }
}

/// Per-profile execution state: reusable kernel scratch plus the carry
/// of samples left over from the last partially-consumed batch. The
/// carry is what coalesces small requests within one shard's stream —
/// the kernel only ever runs full `64 * W`-sample batches, and whatever
/// a request does not consume is handed to the next request on this
/// shard, in draw order, with no randomness discarded.
struct ProfileState {
    sampler: Arc<CtSampler>,
    scratch: LaneScratch,
    carry: VecDeque<i32>,
    /// Reused staging buffer for the final partial batch of a request.
    tail: Vec<i32>,
    /// The profile's own PRNG stream (per-profile stream layout only;
    /// `None` under the legacy shared-stream layout).
    rng: Option<ChaChaRng>,
}

/// Which PRNG stream layout a [`ShardEngine`] draws from.
///
/// * `Legacy` — v1: one stream per (shard, epoch), shared by every
///   profile in submission order. Byte-compatible with every pre-v2
///   trace.
/// * `PerProfile` — v2: one stream per (shard, profile, epoch), forked
///   as `seeds.fork_subtree(shard).fork_chacha_epoch(profile, epoch)`.
///   Decoupling profiles is what lets coalescing reorder *across*
///   profiles (and lets a thief serve a stolen gang bit-identically):
///   only the per-(shard, profile) member order matters, and the
///   coalescer preserves exactly that.
pub(crate) enum EngineStreams {
    Legacy(Box<ChaChaRng>),
    PerProfile {
        /// `seeds.fork_subtree(shard)`.
        subtree: SeedTree,
        epoch: u64,
    },
}

/// The pool-wide stream-layout choice, fixed at spawn: legacy (v1) or
/// per-profile (v2 / coalescing). The supervisor replays the same choice
/// for every resurrection epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum StreamMode {
    Legacy,
    PerProfile,
}

/// The epoch streams worker `worker` draws from at `epoch` — one place
/// defines the fork schedule for spawn, resurrection, and replay alike.
pub(crate) fn epoch_streams(
    mode: StreamMode,
    seeds: &SeedTree,
    worker: u64,
    epoch: u64,
) -> EngineStreams {
    match mode {
        StreamMode::Legacy => {
            EngineStreams::Legacy(Box::new(seeds.fork_chacha_epoch(worker, epoch)))
        }
        StreamMode::PerProfile => EngineStreams::PerProfile {
            subtree: seeds.fork_subtree(worker),
            epoch,
        },
    }
}

/// One shard's deterministic serving engine: the per-profile carry
/// coalescers plus the epoch's PRNG stream(s).
///
/// Extracted from the worker loop so that
/// [`replay_trace`](crate::replay_trace) and
/// [`replay_coalesced`](crate::replay_coalesced) can drive the
/// *identical* code path without threads or rings — the engine, fed the
/// same (profile, count) sequence over the same streams, is the
/// definition of what a shard's responses are.
///
/// Profile states are created lazily on first use. State creation draws
/// no randomness (scratch allocation only), so laziness is
/// determinism-neutral — which is also what makes hot-loaded registry
/// additions visible to already-running workers.
pub(crate) struct ShardEngine {
    backend: Backend,
    source: ProfileSource,
    states: Vec<Option<ProfileState>>,
    streams: EngineStreams,
}

impl ShardEngine {
    pub(crate) fn new(backend: Backend, source: ProfileSource, streams: EngineStreams) -> Self {
        ShardEngine {
            backend,
            source,
            states: Vec::new(),
            streams,
        }
    }

    fn ensure_state(&mut self, profile_index: usize) {
        if self.states.len() <= profile_index {
            self.states.resize_with(profile_index + 1, || None);
        }
        if self.states[profile_index].is_none() {
            let sampler = self
                .source
                .sampler(profile_index)
                .expect("profile validated at submission");
            let rng = match &self.streams {
                EngineStreams::Legacy(_) => None,
                EngineStreams::PerProfile { subtree, epoch } => {
                    Some(subtree.fork_chacha_epoch(profile_index as u64, *epoch))
                }
            };
            self.states[profile_index] = Some(ProfileState {
                scratch: sampler.lane_scratch_for(self.backend),
                sampler,
                carry: VecDeque::new(),
                tail: vec![0i32; 64 * self.backend.width()],
                rng,
            });
        }
    }

    /// Fills one response: carry first, then whole kernel batches
    /// directly into the response buffer, then (if needed) one final
    /// batch staged through `tail` with the unused suffix pushed onto the
    /// carry. `faults` is consulted after every kernel batch against the
    /// lifetime batch counter in `stats`.
    pub(crate) fn serve(
        &mut self,
        profile_index: usize,
        count: usize,
        stats: &WorkerStats,
        faults: &ArmedFaults,
    ) -> Vec<i32> {
        self.ensure_state(profile_index);
        let state = self.states[profile_index]
            .as_mut()
            .expect("state ensured above");
        let rng = match &mut self.streams {
            EngineStreams::Legacy(rng) => &mut **rng,
            EngineStreams::PerProfile { .. } => state
                .rng
                .as_mut()
                .expect("per-profile layout forks a stream"),
        };
        let mut out = vec![0i32; count];
        // Drain the carry (leftovers of the previous request's last batch).
        let take = count.min(state.carry.len());
        for (slot, v) in out[..take].iter_mut().zip(state.carry.drain(..take)) {
            *slot = v;
        }
        stats
            .fresh
            .fetch_add((count - take) as u64, Ordering::Relaxed);
        let mut filled = take;
        let batch = 64 * state.scratch.width();
        while count - filled >= batch {
            state.sampler.sample_batch_lanes(
                rng,
                &mut state.scratch,
                &mut out[filled..filled + batch],
            );
            let batches = stats.batches.fetch_add(1, Ordering::Relaxed) + 1;
            faults.check(FaultSite::Batch, batches);
            filled += batch;
        }
        if filled < count {
            state
                .sampler
                .sample_batch_lanes(rng, &mut state.scratch, &mut state.tail);
            let batches = stats.batches.fetch_add(1, Ordering::Relaxed) + 1;
            faults.check(FaultSite::Batch, batches);
            let need = count - filled;
            out[filled..].copy_from_slice(&state.tail[..need]);
            debug_assert!(state.carry.is_empty(), "carry drained before refill");
            state.carry.extend(&state.tail[need..]);
        }
        out
    }
}

/// Everything a worker thread (and the supervisor's respawn path) needs
/// besides the epoch streams: the shard's queue, sibling queues to steal
/// from (empty disables stealing), the profile source, and the shared
/// accounting surfaces.
#[derive(Clone)]
pub(crate) struct WorkerContext {
    pub(crate) index: usize,
    pub(crate) width: LaneWidth,
    pub(crate) shard: Arc<Ring<Job>>,
    /// Sibling rings in scan order (pre-rotated: `index + 1, ...`,
    /// wrapping, self excluded). Empty when stealing is off.
    pub(crate) siblings: Vec<Arc<Ring<Job>>>,
    /// This shard's abandon log, re-tagged onto stolen gangs.
    pub(crate) abandons: Arc<AbandonLog>,
    pub(crate) source: ProfileSource,
    pub(crate) stats: Arc<WorkerStats>,
    pub(crate) faults: Arc<ArmedFaults>,
    /// The per-shard dispatch log (coalescing mode only): the replay
    /// record of which members this worker served, in order.
    pub(crate) dispatch: Option<Arc<DispatchLog>>,
}

/// Spawns worker `ctx.index` at the configured lane width, drawing from
/// `streams` (the epoch streams picked by the caller). The width is
/// mapped onto the preferred available SIMD [`Backend`] of that exact
/// width (`CTGAUSS_FORCE_BACKEND` wins when it matches), so `LaneWidth`
/// keeps its meaning — batch units of `64 * W` samples — while the
/// kernel runs on real vector registers where the CPU has them. The
/// draw-order contract keeps the response streams identical across
/// backends of the same width (and, via the carry coalescer, across
/// widths too).
///
/// `notice` reports a panicking exit to the supervisor; a graceful exit
/// (ring closed and drained) reports nothing.
pub(crate) fn spawn_worker(
    ctx: WorkerContext,
    streams: EngineStreams,
    notice: DeathNotice,
) -> JoinHandle<()> {
    std::thread::Builder::new()
        .name(format!("ctgauss-pool-{}", ctx.index))
        .spawn(move || {
            // Declared first, so it drops *last* during a panic unwind:
            // by the time the supervisor learns of the death, every
            // claimed-but-unserved Job (local to worker_loop) has already
            // resolved its tickets and recorded its seqs.
            let _notice = notice;
            let backend = Backend::select_for_width(ctx.width.lanes());
            let mut engine = ShardEngine::new(backend, ctx.source.clone(), streams);
            worker_loop(&mut engine, &ctx)
        })
        .expect("spawn pool worker")
}

fn worker_loop(engine: &mut ShardEngine, ctx: &WorkerContext) {
    let mut gangs: Vec<Job> = Vec::with_capacity(CLAIM);
    // `pop_many` blocks for work and returns false only once the ring is
    // closed *and* drained, so shutdown never drops a queued request. In
    // stealing mode the wait is bounded so an idle worker can scan
    // sibling rings instead of parking while a hot profile backs a
    // neighbor up (or a dead neighbor sits in restart backoff).
    loop {
        if ctx.siblings.is_empty() {
            if !ctx.shard.pop_many(CLAIM, &mut gangs) {
                return;
            }
        } else {
            match ctx.shard.pop_many_timeout(CLAIM, &mut gangs, STEAL_POLL) {
                PopWait::Items => {}
                PopWait::Closed => return,
                PopWait::TimedOut => {
                    if let Some(mut gang) = ctx.siblings.iter().find_map(|ring| ring.steal_one()) {
                        gang.adopt(&ctx.abandons);
                        serve_gang(engine, gang, ctx);
                    }
                    continue;
                }
            }
        }
        for gang in gangs.drain(..) {
            serve_gang(engine, gang, ctx);
        }
    }
}

fn serve_gang(engine: &mut ShardEngine, gang: Job, ctx: &WorkerContext) {
    let stats = &ctx.stats;
    // The request-site fault points: one per member, fired while the
    // members are claimed but unserved, so a panic here abandons exactly
    // this gang (and the rest of the claimed run) — member counts stay
    // on gang boundaries, which is what keeps the failure log's
    // `fulfilled` field a valid dispatch-log cursor.
    let base = stats.requests();
    for m in 1..=gang.members.len() as u64 {
        ctx.faults.check(FaultSite::Request, base + m);
    }
    let samples = engine.serve(gang.profile_index, gang.total, stats, &ctx.faults);
    if let Some(log) = &ctx.dispatch {
        log.append(DispatchRecord {
            shard: ctx.index,
            home: gang.home,
            profile_index: gang.profile_index,
            members: gang.members.iter().map(|m| m.seq).collect(),
        });
    }
    if gang.home != ctx.index {
        stats.steals.fetch_add(1, Ordering::Relaxed);
    }
    stats
        .requests
        .fetch_add(gang.members.len() as u64, Ordering::Relaxed);
    stats
        .samples
        .fetch_add(samples.len() as u64, Ordering::Relaxed);
    gang.scatter(samples, stats);
}
