//! Worker threads: coalesced batch execution over one forked stream.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use ctgauss_core::{Backend, CtSampler, LaneScratch};
use ctgauss_prng::ChaChaRng;

use crate::fault::{ArmedFaults, FaultSite};
use crate::health::AbandonLog;
use crate::pool::{Completion, LaneWidth, SampleRequest};
use crate::ring::Ring;
use crate::supervisor::DeathNotice;

/// How many queued requests a worker claims per ring pass. Requests are
/// served strictly in FIFO order either way; claiming a run of them just
/// amortizes the ring lock.
const CLAIM: usize = 64;

/// One queued request plus its response slot. If the job is dropped
/// unfulfilled (worker panic unwinding, or a ring purge after budget
/// exhaustion), the waiting ticket is released with
/// [`PoolError::WorkerGone`](crate::PoolError::WorkerGone) instead of
/// hanging, and the seq is recorded in the shard's [`AbandonLog`] so the
/// failure log fully accounts for it.
#[derive(Debug)]
pub(crate) struct Job {
    request: SampleRequest,
    /// Pool-wide submission sequence number, echoed back on fulfillment
    /// so response auditing is end to end (a completion delivered by the
    /// wrong job carries the wrong seq and is caught by the front end).
    seq: u64,
    /// When the submitter created the job — the start of the
    /// submit-to-completion latency the serving worker records.
    #[cfg_attr(not(feature = "metrics"), allow(dead_code))]
    submitted_at: std::time::Instant,
    completion: Arc<Completion>,
    abandons: Arc<AbandonLog>,
    fulfilled: bool,
}

impl Job {
    pub(crate) fn new(
        request: SampleRequest,
        seq: u64,
        submitted_at: std::time::Instant,
        completion: Arc<Completion>,
        abandons: Arc<AbandonLog>,
    ) -> Self {
        Job {
            request,
            seq,
            submitted_at,
            completion,
            abandons,
            fulfilled: false,
        }
    }

    fn fulfill(mut self, samples: Vec<i32>) {
        self.completion.fulfill(self.seq, samples);
        self.fulfilled = true;
    }

    /// Discards a job that was never accepted by a ring (a refused
    /// push): the submission failed synchronously, so neither the
    /// abandon log nor the ticket should hear about it.
    pub(crate) fn defuse(mut self) {
        self.fulfilled = true;
    }
}

impl Drop for Job {
    fn drop(&mut self) {
        if !self.fulfilled {
            self.completion.abandon();
            self.abandons.record(self.seq);
        }
    }
}

/// Lock-free per-worker counters, surfaced through
/// [`Pool::metrics`](crate::Pool::metrics).
///
/// The same instance is handed to every restart epoch of a worker, so
/// the counters are *lifetime* counters of the shard — which is what
/// makes fault triggers (`panic@w0.batch3`) and the failure log's
/// `fulfilled` field well-defined across resurrections.
#[derive(Debug, Default)]
pub(crate) struct WorkerStats {
    requests: AtomicU64,
    samples: AtomicU64,
    batches: AtomicU64,
    /// Submit-to-completion latency in nanoseconds, recorded at
    /// fulfillment. Lock-free and off the sample path (after the kernel
    /// ran, before the completion wakes the waiter); compiled out
    /// entirely without the `metrics` feature.
    #[cfg(feature = "metrics")]
    pub(crate) latency: ctgauss_telemetry::Histogram,
}

impl WorkerStats {
    pub(crate) fn requests(&self) -> u64 {
        self.requests.load(Ordering::Relaxed)
    }

    pub(crate) fn samples(&self) -> u64 {
        self.samples.load(Ordering::Relaxed)
    }

    pub(crate) fn batches(&self) -> u64 {
        self.batches.load(Ordering::Relaxed)
    }
}

/// Per-profile execution state: reusable kernel scratch plus the carry
/// of samples left over from the last partially-consumed batch. The
/// carry is what coalesces small requests — the kernel only ever runs
/// full `64 * W`-sample batches, and whatever a request does not consume
/// is handed to the next request on this shard, in draw order, with no
/// randomness discarded.
struct ProfileState {
    sampler: Arc<CtSampler>,
    scratch: LaneScratch,
    carry: VecDeque<i32>,
    /// Reused staging buffer for the final partial batch of a request.
    tail: Vec<i32>,
}

/// One shard's deterministic serving engine: the per-profile carry
/// coalescers plus the epoch's PRNG stream.
///
/// Extracted from the worker loop so that
/// [`replay_trace`](crate::replay_trace) can drive the *identical*
/// code path without threads or rings — the engine, fed the same
/// (profile, count) sequence over the same stream, is the definition of
/// what a shard's responses are.
pub(crate) struct ShardEngine {
    states: Vec<ProfileState>,
    rng: ChaChaRng,
}

impl ShardEngine {
    pub(crate) fn new(backend: Backend, profiles: &[Arc<CtSampler>], rng: ChaChaRng) -> Self {
        ShardEngine {
            states: profiles
                .iter()
                .map(|sampler| ProfileState {
                    sampler: Arc::clone(sampler),
                    scratch: sampler.lane_scratch_for(backend),
                    carry: VecDeque::new(),
                    tail: vec![0i32; 64 * backend.width()],
                })
                .collect(),
            rng,
        }
    }

    /// Fills one response: carry first, then whole kernel batches
    /// directly into the response buffer, then (if needed) one final
    /// batch staged through `tail` with the unused suffix pushed onto the
    /// carry. `faults` is consulted after every kernel batch against the
    /// lifetime batch counter in `stats`.
    pub(crate) fn serve(
        &mut self,
        profile_index: usize,
        count: usize,
        stats: &WorkerStats,
        faults: &ArmedFaults,
    ) -> Vec<i32> {
        let state = &mut self.states[profile_index];
        let mut out = vec![0i32; count];
        // Drain the carry (leftovers of the previous request's last batch).
        let take = count.min(state.carry.len());
        for (slot, v) in out[..take].iter_mut().zip(state.carry.drain(..take)) {
            *slot = v;
        }
        let mut filled = take;
        let batch = 64 * state.scratch.width();
        while count - filled >= batch {
            state.sampler.sample_batch_lanes(
                &mut self.rng,
                &mut state.scratch,
                &mut out[filled..filled + batch],
            );
            let batches = stats.batches.fetch_add(1, Ordering::Relaxed) + 1;
            faults.check(FaultSite::Batch, batches);
            filled += batch;
        }
        if filled < count {
            state
                .sampler
                .sample_batch_lanes(&mut self.rng, &mut state.scratch, &mut state.tail);
            let batches = stats.batches.fetch_add(1, Ordering::Relaxed) + 1;
            faults.check(FaultSite::Batch, batches);
            let need = count - filled;
            out[filled..].copy_from_slice(&state.tail[..need]);
            debug_assert!(state.carry.is_empty(), "carry drained before refill");
            state.carry.extend(&state.tail[need..]);
        }
        out
    }
}

/// Spawns worker `index` at the configured lane width, drawing from
/// `rng` (the epoch stream picked by the caller — `fork_chacha(w)` for
/// epoch 0, `fork_chacha_epoch(w, e)` for resurrections). The width is
/// mapped onto the preferred available SIMD [`Backend`] of that exact
/// width (`CTGAUSS_FORCE_BACKEND` wins when it matches), so `LaneWidth`
/// keeps its meaning — batch units of `64 * W` samples — while the
/// kernel runs on real vector registers where the CPU has them. The
/// draw-order contract keeps the response streams identical across
/// backends of the same width (and, via the carry coalescer, across
/// widths too).
///
/// `notice` reports a panicking exit to the supervisor; a graceful exit
/// (ring closed and drained) reports nothing.
#[allow(clippy::too_many_arguments)] // one per shard resource, spawn-site only
pub(crate) fn spawn_worker(
    index: usize,
    width: LaneWidth,
    shard: Arc<Ring<Job>>,
    profiles: Arc<[Arc<CtSampler>]>,
    rng: ChaChaRng,
    stats: Arc<WorkerStats>,
    faults: Arc<ArmedFaults>,
    notice: DeathNotice,
) -> JoinHandle<()> {
    std::thread::Builder::new()
        .name(format!("ctgauss-pool-{index}"))
        .spawn(move || {
            // Declared first, so it drops *last* during a panic unwind:
            // by the time the supervisor learns of the death, every
            // claimed-but-unserved Job (local to worker_loop) has already
            // resolved its ticket and recorded its seq.
            let _notice = notice;
            let backend = Backend::select_for_width(width.lanes());
            let mut engine = ShardEngine::new(backend, &profiles, rng);
            worker_loop(&mut engine, &shard, &stats, &faults)
        })
        .expect("spawn pool worker")
}

fn worker_loop(
    engine: &mut ShardEngine,
    shard: &Ring<Job>,
    stats: &WorkerStats,
    faults: &ArmedFaults,
) {
    let mut jobs: Vec<Job> = Vec::with_capacity(CLAIM);
    // `pop_many` blocks for work and returns false only once the ring is
    // closed *and* drained, so shutdown never drops a queued request.
    while shard.pop_many(CLAIM, &mut jobs) {
        for job in jobs.drain(..) {
            // The request-site fault point: fires while the Nth lifetime
            // request is claimed but unserved, so a panic here abandons
            // exactly that request (and the rest of the claimed run).
            faults.check(FaultSite::Request, stats.requests() + 1);
            let samples = engine.serve(job.request.profile.index, job.request.count, stats, faults);
            stats.requests.fetch_add(1, Ordering::Relaxed);
            stats
                .samples
                .fetch_add(samples.len() as u64, Ordering::Relaxed);
            #[cfg(feature = "metrics")]
            stats.latency.record_duration(job.submitted_at.elapsed());
            job.fulfill(samples);
        }
    }
}
