//! Offline, bit-exact replay of a pool run from its replay triple:
//! **(seed, request trace, failure log)** — plus, for coalescing (v2)
//! pools, the per-shard **dispatch log**.
//!
//! Without failures, (seed, trace) alone determines every response —
//! that is the pool's determinism contract. Worker deaths add exactly
//! three facts per event, all recorded in the [`FailureEvent`]: where
//! the dying epoch's stream ended (the lifetime `fulfilled` count),
//! which requests were abandoned, and which epoch stream the shard
//! served from next. [`replay_trace`] folds those facts back in and
//! reproduces, single-threaded and without any pool, precisely what the
//! live run answered: `Some(samples)` bit-for-bit for every fulfilled
//! request, `None` for every request the failures swallowed.
//!
//! The replay runs the same [`ShardEngine`](crate::worker::ShardEngine)
//! the workers run, at the live pool's [`LaneWidth`](crate::LaneWidth).
//! The width matters once a stream serves more than one consumer run:
//! each profile keeps its own sample carry, but (in the v1 layout) all
//! of a shard's profiles draw from one generator, so the *order* bits
//! are consumed across profiles follows the batch size (64·W samples
//! per kernel pass). A single-profile trace replays width-independently
//! (the draw-order contract: every width yields the same per-stream
//! sample order), but only the run's own width reproduces a
//! multi-profile interleaving.
//!
//! # Coalesced runs
//!
//! A v2 pool routes by profile (home shard = `profile_index % threads`),
//! gangs requests together, steals across shards, and reroutes around
//! dead rings — so "which shard served seq `i`" is no longer a pure
//! function of the trace. What *is* recorded is the per-shard
//! [`DispatchRecord`] list: every gang a worker served, in serve order.
//! By the draw-order contract a member's samples are a prefix-slice of
//! its (shard, profile, epoch) stream regardless of gang boundaries, so
//! those lists (plus seed, trace, width, failure log) pin every
//! delivered sample: that is [`replay_coalesced`]. For clean runs —
//! no faults, no stealing — the dispatch order per (shard, profile) is
//! provably ascending seq order, so [`replay_coalesced_clean`] can
//! reconstruct the run from the trace alone, which is what an offline
//! verifier with no access to the server's logs checks against.

use std::collections::HashSet;
use std::sync::Arc;

use ctgauss_core::{Backend, CtSampler};
use ctgauss_prng::SeedTree;

use crate::coalesce::DispatchRecord;
use crate::fault::ArmedFaults;
use crate::health::{FailureEvent, FailureOutcome};
use crate::pool::LaneWidth;
use crate::registry::ProfileSource;
use crate::worker::{epoch_streams, ShardEngine, StreamMode, WorkerStats};

/// One entry of a recorded request trace, in submission order: entry
/// `i` was accepted under sequence number `i` (and therefore served by
/// shard `i % threads` — including entries the pool answered with
/// `WorkerGone` because that shard was already retired; they consumed
/// their sequence number too).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEntry {
    /// The profile, by registration order ([`ProfileId::index`](crate::ProfileId::index)).
    pub profile_index: usize,
    /// Requested sample count.
    pub count: usize,
}

fn static_source(profiles: &[Arc<CtSampler>]) -> ProfileSource {
    ProfileSource::Static(profiles.to_vec().into())
}

/// Replays a recorded run. Returns, for each trace entry in order,
/// `Some(samples)` exactly as the live pool delivered them, or `None`
/// where the failure log says the request was abandoned (its ticket
/// resolved to `WorkerGone`) or routed to an already-retired shard.
///
/// `seeds`, `profiles` (in registration order), `threads` and `width`
/// must match the live pool's configuration; `failures` is
/// [`Pool::failure_log`](crate::Pool::failure_log) taken after
/// [`Pool::shutdown`](crate::Pool::shutdown). An empty failure log makes
/// this the plain (seed, trace) replay.
pub fn replay_trace(
    seeds: &SeedTree,
    profiles: &[Arc<CtSampler>],
    threads: usize,
    width: LaneWidth,
    trace: &[TraceEntry],
    failures: &[FailureEvent],
) -> Vec<Option<Vec<i32>>> {
    assert!(threads > 0, "a pool has at least one shard");
    let abandoned: HashSet<u64> = failures
        .iter()
        .flat_map(|event| event.abandoned.iter().copied())
        .collect();
    let backend = Backend::select_for_width(width.lanes());
    let source = static_source(profiles);
    let stats = WorkerStats::default();
    let no_faults = ArmedFaults::none();
    let mut out: Vec<Option<Vec<i32>>> = vec![None; trace.len()];
    for worker in 0..threads {
        // This shard's failure events, in the order the supervisor
        // recorded them. Each is a gate: once `served` reaches the
        // event's lifetime fulfilled count, the dying epoch's stream is
        // exhausted and the next serveable request draws from the
        // replacement's epoch stream (or nothing, if the shard retired).
        let mut events = failures
            .iter()
            .filter(|event| event.worker == worker)
            .peekable();
        let mut engine = ShardEngine::new(
            backend,
            source.clone(),
            epoch_streams(StreamMode::Legacy, seeds, worker as u64, 0),
        );
        let mut served = 0u64;
        let mut dead = false;
        for (seq, entry) in trace.iter().enumerate().skip(worker).step_by(threads) {
            if abandoned.contains(&(seq as u64)) {
                continue; // stays None
            }
            while let Some(event) = events.peek() {
                if served < event.fulfilled {
                    break;
                }
                match event.outcome {
                    FailureOutcome::Restarted { new_epoch } => {
                        engine = ShardEngine::new(
                            backend,
                            source.clone(),
                            epoch_streams(StreamMode::Legacy, seeds, worker as u64, new_epoch),
                        );
                    }
                    FailureOutcome::Exhausted | FailureOutcome::ShuttingDown => dead = true,
                }
                events.next();
            }
            if dead {
                continue; // retired shard: the live pool answered WorkerGone
            }
            out[seq] = Some(engine.serve(entry.profile_index, entry.count, &stats, &no_faults));
            served += 1;
        }
    }
    out
}

/// Replays a **coalescing (v2)** pool run from its extended replay
/// tuple: (seed, trace, width, failure log, dispatch log). Returns, per
/// trace entry, `Some(samples)` bit-exactly as delivered, or `None` for
/// requests no dispatch record covers — abandoned members, purged
/// rings, and staged members lost to shutdown all land there, so the
/// dispatch log is the single authority on what was delivered.
///
/// `dispatch` is [`Pool::dispatch_log`](crate::Pool::dispatch_log)
/// taken after shutdown: `dispatch[s]` lists every gang shard `s`
/// *served* (not merely queued), in serve order. Work stealing and
/// rerouting are therefore already folded in — a stolen gang appears in
/// the thief's list, and since v2 streams are per (shard, profile,
/// epoch) and a member's samples are a prefix-slice of that stream, the
/// serve order per (shard, profile) is all that has to be pinned.
///
/// The failure log gates restart epochs exactly as in [`replay_trace`],
/// except the `fulfilled` cursor counts gang *members*, which is what
/// the live worker counts too.
pub fn replay_coalesced(
    seeds: &SeedTree,
    profiles: &[Arc<CtSampler>],
    width: LaneWidth,
    trace: &[TraceEntry],
    failures: &[FailureEvent],
    dispatch: &[Vec<DispatchRecord>],
) -> Vec<Option<Vec<i32>>> {
    let backend = Backend::select_for_width(width.lanes());
    let source = static_source(profiles);
    let stats = WorkerStats::default();
    let no_faults = ArmedFaults::none();
    let mut out: Vec<Option<Vec<i32>>> = vec![None; trace.len()];
    for (worker, records) in dispatch.iter().enumerate() {
        let mut events = failures
            .iter()
            .filter(|event| event.worker == worker)
            .peekable();
        let mut engine = ShardEngine::new(
            backend,
            source.clone(),
            epoch_streams(StreamMode::PerProfile, seeds, worker as u64, 0),
        );
        let mut served = 0u64;
        for record in records {
            while let Some(event) = events.peek() {
                if served < event.fulfilled {
                    break;
                }
                if let FailureOutcome::Restarted { new_epoch } = event.outcome {
                    engine = ShardEngine::new(
                        backend,
                        source.clone(),
                        epoch_streams(StreamMode::PerProfile, seeds, worker as u64, new_epoch),
                    );
                }
                // Exhausted/ShuttingDown: a retired shard appends no
                // further records, so there is nothing to skip — the
                // remaining records (if any) predate the event.
                events.next();
            }
            let total: usize = record
                .members
                .iter()
                .map(|&seq| trace[seq as usize].count)
                .sum();
            let mut samples = engine.serve(record.profile_index, total, &stats, &no_faults);
            // Scatter back to the members in serve order, exactly as
            // Job::scatter did live.
            for &seq in record.members.iter().rev().skip(1).rev() {
                let rest = samples.split_off(trace[seq as usize].count);
                out[seq as usize] = Some(std::mem::replace(&mut samples, rest));
            }
            if let Some(&last) = record.members.last() {
                out[last as usize] = Some(samples);
            }
            served += record.members.len() as u64;
        }
    }
    out
}

/// Replays a **clean** coalesced run — no injected faults, no worker
/// deaths, and stealing disabled — from (seed, trace, threads, width)
/// alone, no dispatch log needed.
///
/// Why this is sound: with stealing off, every gang of profile `p` is
/// served by its home shard `p % threads`, and the coalescer stages,
/// flushes, and enqueues under one stage lock, so shard `s` serves each
/// profile's members in ascending seq order. By the draw-order contract
/// a member's samples are then the next `count`-sample prefix-slice of
/// the (shard, profile) stream *regardless of how the run ganged them*
/// — so serving each trace entry individually, in seq order, on its
/// home shard's engine reproduces every delivered buffer bit-exactly.
/// This is the offline verifier's tool: it needs only what the client
/// already knows.
pub fn replay_coalesced_clean(
    seeds: &SeedTree,
    profiles: &[Arc<CtSampler>],
    threads: usize,
    width: LaneWidth,
    trace: &[TraceEntry],
) -> Vec<Vec<i32>> {
    assert!(threads > 0, "a pool has at least one shard");
    let backend = Backend::select_for_width(width.lanes());
    let source = static_source(profiles);
    let stats = WorkerStats::default();
    let no_faults = ArmedFaults::none();
    let mut engines: Vec<ShardEngine> = (0..threads)
        .map(|worker| {
            ShardEngine::new(
                backend,
                source.clone(),
                epoch_streams(StreamMode::PerProfile, seeds, worker as u64, 0),
            )
        })
        .collect();
    trace
        .iter()
        .map(|entry| {
            let home = entry.profile_index % threads;
            engines[home].serve(entry.profile_index, entry.count, &stats, &no_faults)
        })
        .collect()
}
