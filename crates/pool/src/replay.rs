//! Offline, bit-exact replay of a pool run from its replay triple:
//! **(seed, request trace, failure log)**.
//!
//! Without failures, (seed, trace) alone determines every response —
//! that is the pool's determinism contract. Worker deaths add exactly
//! three facts per event, all recorded in the [`FailureEvent`]: where
//! the dying epoch's stream ended (the lifetime `fulfilled` count),
//! which requests were abandoned, and which epoch stream the shard
//! served from next. [`replay_trace`] folds those facts back in and
//! reproduces, single-threaded and without any pool, precisely what the
//! live run answered: `Some(samples)` bit-for-bit for every fulfilled
//! request, `None` for every request the failures swallowed.
//!
//! The replay runs the same [`ShardEngine`](crate::worker::ShardEngine)
//! the workers run, at the live pool's [`LaneWidth`](crate::LaneWidth).
//! The width matters once a shard serves more than one profile: each
//! profile keeps its own sample carry, but all of a shard's profiles
//! draw from one generator, so the *order* bits are consumed across
//! profiles follows the batch size (64·W samples per kernel pass). A
//! single-profile trace replays width-independently (the draw-order
//! contract: every width yields the same per-stream sample order), but
//! only the run's own width reproduces a multi-profile interleaving.

use std::collections::HashSet;
use std::sync::Arc;

use ctgauss_core::{Backend, CtSampler};
use ctgauss_prng::SeedTree;

use crate::fault::ArmedFaults;
use crate::health::{FailureEvent, FailureOutcome};
use crate::pool::LaneWidth;
use crate::worker::{ShardEngine, WorkerStats};

/// One entry of a recorded request trace, in submission order: entry
/// `i` was accepted under sequence number `i` (and therefore served by
/// shard `i % threads` — including entries the pool answered with
/// `WorkerGone` because that shard was already retired; they consumed
/// their sequence number too).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEntry {
    /// The profile, by registration order ([`ProfileId::index`](crate::ProfileId::index)).
    pub profile_index: usize,
    /// Requested sample count.
    pub count: usize,
}

/// Replays a recorded run. Returns, for each trace entry in order,
/// `Some(samples)` exactly as the live pool delivered them, or `None`
/// where the failure log says the request was abandoned (its ticket
/// resolved to `WorkerGone`) or routed to an already-retired shard.
///
/// `seeds`, `profiles` (in registration order), `threads` and `width`
/// must match the live pool's configuration; `failures` is
/// [`Pool::failure_log`](crate::Pool::failure_log) taken after
/// [`Pool::shutdown`](crate::Pool::shutdown). An empty failure log makes
/// this the plain (seed, trace) replay.
pub fn replay_trace(
    seeds: &SeedTree,
    profiles: &[Arc<CtSampler>],
    threads: usize,
    width: LaneWidth,
    trace: &[TraceEntry],
    failures: &[FailureEvent],
) -> Vec<Option<Vec<i32>>> {
    assert!(threads > 0, "a pool has at least one shard");
    let abandoned: HashSet<u64> = failures
        .iter()
        .flat_map(|event| event.abandoned.iter().copied())
        .collect();
    let backend = Backend::select_for_width(width.lanes());
    let stats = WorkerStats::default();
    let no_faults = ArmedFaults::none();
    let mut out: Vec<Option<Vec<i32>>> = vec![None; trace.len()];
    for worker in 0..threads {
        // This shard's failure events, in the order the supervisor
        // recorded them. Each is a gate: once `served` reaches the
        // event's lifetime fulfilled count, the dying epoch's stream is
        // exhausted and the next serveable request draws from the
        // replacement's epoch stream (or nothing, if the shard retired).
        let mut events = failures
            .iter()
            .filter(|event| event.worker == worker)
            .peekable();
        let mut engine =
            ShardEngine::new(backend, profiles, seeds.fork_chacha_epoch(worker as u64, 0));
        let mut served = 0u64;
        let mut dead = false;
        for (seq, entry) in trace.iter().enumerate().skip(worker).step_by(threads) {
            if abandoned.contains(&(seq as u64)) {
                continue; // stays None
            }
            while let Some(event) = events.peek() {
                if served < event.fulfilled {
                    break;
                }
                match event.outcome {
                    FailureOutcome::Restarted { new_epoch } => {
                        engine = ShardEngine::new(
                            backend,
                            profiles,
                            seeds.fork_chacha_epoch(worker as u64, new_epoch),
                        );
                    }
                    FailureOutcome::Exhausted | FailureOutcome::ShuttingDown => dead = true,
                }
                events.next();
            }
            if dead {
                continue; // retired shard: the live pool answered WorkerGone
            }
            out[seq] = Some(engine.serve(entry.profile_index, entry.count, &stats, &no_faults));
            served += 1;
        }
    }
    out
}
