//! The supervisor: resurrects dead workers under a bounded restart
//! budget, and turns every death into a [`FailureEvent`].
//!
//! One supervisor thread per pool owns every worker `JoinHandle`. A
//! panicking worker reports itself through the [`DeathNotice`] guard it
//! carries (graceful exits report nothing); the supervisor joins the
//! corpse — which synchronizes with everything the unwinding thread did,
//! so stats and the abandon log are complete — and then either spawns a
//! replacement on a fresh domain-separated epoch stream, or, once the
//! [`RestartPolicy`] budget is spent, closes and purges the shard's ring
//! so the shard degrades to deterministic `WorkerGone` failures instead
//! of hanging callers.
//!
//! The replacement deliberately does **not** inherit the dead worker's
//! carry or PRNG position: both died with the thread. It draws from
//! `fork_chacha_epoch(worker, epoch + 1)` with an empty carry, and the
//! [`FailureEvent`] records exactly where the old stream ended — which is
//! what keeps (seed, trace, failure-log) a complete replay triple.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use ctgauss_prng::SeedTree;

use crate::health::{FailureEvent, FailureLog, FailureOutcome, HealthBoard, ShardState};
use crate::ring::{lock_recover, wait_recover};
use crate::worker::{epoch_streams, spawn_worker, StreamMode, WorkerContext};

/// Restart budget and backoff schedule for worker resurrection.
///
/// A worker that keeps dying is not worth reviving forever: each shard
/// gets `max_restarts` resurrections, with an exponential pause
/// (`backoff_base * 2^restarts`, capped at `backoff_max`) before each so
/// a crash loop cannot spin the supervisor hot. After the budget is
/// spent the shard is retired — its ring closed and purged — and the
/// pool degrades to per-shard `WorkerGone` errors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RestartPolicy {
    /// Resurrections allowed per shard before it is retired.
    pub max_restarts: u32,
    /// Pause before the first resurrection of a shard.
    pub backoff_base: Duration,
    /// Upper bound on the pause, however many times the shard has died.
    pub backoff_max: Duration,
}

impl Default for RestartPolicy {
    fn default() -> Self {
        RestartPolicy {
            max_restarts: 3,
            backoff_base: Duration::from_millis(5),
            backoff_max: Duration::from_millis(200),
        }
    }
}

impl RestartPolicy {
    /// A policy that never resurrects: the first death retires the shard.
    #[must_use]
    pub fn no_restarts() -> Self {
        RestartPolicy {
            max_restarts: 0,
            ..RestartPolicy::default()
        }
    }

    /// The pause before resurrection number `prior_restarts + 1`.
    fn backoff(&self, prior_restarts: u32) -> Duration {
        let factor = 1u32 << prior_restarts.min(16);
        self.backoff_base
            .saturating_mul(factor)
            .min(self.backoff_max)
    }
}

#[derive(Debug)]
pub(crate) enum Event {
    /// Worker `w` is unwinding from a panic.
    Died(usize),
    /// `Pool::shutdown` has closed the rings; join everything and exit.
    Shutdown,
}

/// The mailbox between dying workers / the pool front end and the
/// supervisor thread.
#[derive(Debug)]
pub(crate) struct SupervisorShared {
    queue: Mutex<VecDeque<Event>>,
    cv: Condvar,
}

impl SupervisorShared {
    pub(crate) fn new() -> Self {
        SupervisorShared {
            queue: Mutex::new(VecDeque::new()),
            cv: Condvar::new(),
        }
    }

    pub(crate) fn send(&self, event: Event) {
        lock_recover(&self.queue).push_back(event);
        self.cv.notify_one();
    }

    fn recv(&self) -> Event {
        let mut queue = lock_recover(&self.queue);
        loop {
            if let Some(event) = queue.pop_front() {
                return event;
            }
            queue = wait_recover(&self.cv, queue);
        }
    }

    fn try_recv(&self) -> Option<Event> {
        lock_recover(&self.queue).pop_front()
    }
}

/// A guard each worker thread carries. Dropping it during a panic unwind
/// reports the death to the supervisor; a graceful exit (ring closed and
/// drained) is not a death and reports nothing.
///
/// The worker declares it before anything else, so it drops *after* the
/// claimed `Job`s — by the time the supervisor hears `Died`, every
/// abandoned ticket has been resolved and its seq recorded.
pub(crate) struct DeathNotice {
    shared: Arc<SupervisorShared>,
    worker: usize,
}

impl DeathNotice {
    pub(crate) fn new(shared: &Arc<SupervisorShared>, worker: usize) -> Self {
        DeathNotice {
            shared: Arc::clone(shared),
            worker,
        }
    }
}

impl Drop for DeathNotice {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.shared.send(Event::Died(self.worker));
        }
    }
}

/// Everything the supervisor needs to judge a death and respawn a worker.
pub(crate) struct Supervisor {
    pub(crate) shared: Arc<SupervisorShared>,
    /// Per-shard spawn contexts (ring, siblings, profile source, stats,
    /// faults, dispatch log) — cloned into every resurrection epoch so a
    /// replacement serves exactly the same shard resources.
    pub(crate) contexts: Vec<WorkerContext>,
    pub(crate) seeds: SeedTree,
    /// Which PRNG stream layout resurrection epochs fork (must match
    /// what `PoolBuilder::spawn` chose for epoch 0).
    pub(crate) mode: StreamMode,
    pub(crate) health: Arc<HealthBoard>,
    pub(crate) log: Arc<FailureLog>,
    pub(crate) policy: RestartPolicy,
    pub(crate) closing: Arc<AtomicBool>,
    pub(crate) handles: Vec<Option<JoinHandle<()>>>,
}

impl Supervisor {
    pub(crate) fn spawn(self) -> JoinHandle<()> {
        std::thread::Builder::new()
            .name("ctgauss-pool-supervisor".into())
            .spawn(move || self.run())
            .expect("spawn pool supervisor")
    }

    fn run(mut self) {
        while let Event::Died(worker) = self.shared.recv() {
            self.handle_death(worker);
        }
        self.drain();
    }

    /// Join the corpse, account for the death, and resurrect or retire.
    fn handle_death(&mut self, worker: usize) {
        let Some(handle) = self.handles[worker].take() else {
            return;
        };
        // Joining synchronizes with the dead thread's unwind: after this,
        // its stats updates and abandon records are all visible.
        let cause = match handle.join() {
            Err(payload) => payload_text(payload.as_ref()),
            Ok(()) => "worker exited without panicking".to_owned(),
        };
        let epoch = self.health.epoch(worker);
        let fulfilled = self.contexts[worker].stats.requests();
        let restarts = self.health.restarts(worker);

        if self.closing.load(Ordering::Acquire) {
            // Shutdown already in progress: no resurrection, just make
            // sure nothing queued on this shard hangs.
            self.retire(
                worker,
                epoch,
                fulfilled,
                FailureOutcome::ShuttingDown,
                cause,
            );
            return;
        }
        if restarts >= self.policy.max_restarts {
            self.retire(worker, epoch, fulfilled, FailureOutcome::Exhausted, cause);
            return;
        }

        let new_epoch = epoch + 1;
        let abandoned = self.contexts[worker].abandons.drain();
        self.health.note_restart(worker, abandoned.len() as u64);
        self.health
            .set_state(worker, ShardState::Restarting { epoch: new_epoch });
        self.log.record(FailureEvent {
            worker,
            epoch,
            fulfilled,
            abandoned,
            outcome: FailureOutcome::Restarted { new_epoch },
            cause,
        });
        std::thread::sleep(self.policy.backoff(restarts));
        // The replacement shares the shard's lifetime counters and armed
        // faults, but draws from fresh domain-separated stream(s) with an
        // empty carry: the dead epoch's randomness is gone for good.
        self.handles[worker] = Some(spawn_worker(
            self.contexts[worker].clone(),
            epoch_streams(self.mode, &self.seeds, worker as u64, new_epoch),
            DeathNotice::new(&self.shared, worker),
        ));
        self.health
            .set_state(worker, ShardState::Alive { epoch: new_epoch });
    }

    /// Retire a shard for good: close and purge its ring (purged jobs
    /// resolve their tickets to `WorkerGone` and record their seqs), then
    /// log one event covering everything this death abandoned.
    fn retire(
        &mut self,
        worker: usize,
        epoch: u64,
        fulfilled: u64,
        outcome: FailureOutcome,
        cause: String,
    ) {
        self.contexts[worker].shard.close_and_purge();
        let abandoned = self.contexts[worker].abandons.drain();
        self.health.note_abandoned(worker, abandoned.len() as u64);
        self.health.set_state(worker, ShardState::Dead);
        self.log.record(FailureEvent {
            worker,
            epoch,
            fulfilled,
            abandoned,
            outcome,
            cause,
        });
    }

    /// Shutdown path: process any deaths still queued, then join every
    /// surviving worker (their rings are closed, so they drain and exit).
    /// A worker found dead only now is retired the same way, so no ticket
    /// is left hanging even when a panic races shutdown.
    fn drain(&mut self) {
        while let Some(event) = self.shared.try_recv() {
            if let Event::Died(worker) = event {
                self.handle_death(worker);
            }
        }
        for worker in 0..self.handles.len() {
            let Some(handle) = self.handles[worker].take() else {
                continue;
            };
            if let Err(payload) = handle.join() {
                let cause = payload_text(payload.as_ref());
                let epoch = self.health.epoch(worker);
                let fulfilled = self.contexts[worker].stats.requests();
                self.retire(
                    worker,
                    epoch,
                    fulfilled,
                    FailureOutcome::ShuttingDown,
                    cause,
                );
            }
        }
    }
}

fn payload_text(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(text) = payload.downcast_ref::<&str>() {
        (*text).to_owned()
    } else if let Some(text) = payload.downcast_ref::<String>() {
        text.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_and_saturates() {
        let policy = RestartPolicy {
            max_restarts: 10,
            backoff_base: Duration::from_millis(5),
            backoff_max: Duration::from_millis(40),
        };
        assert_eq!(policy.backoff(0), Duration::from_millis(5));
        assert_eq!(policy.backoff(1), Duration::from_millis(10));
        assert_eq!(policy.backoff(2), Duration::from_millis(20));
        assert_eq!(policy.backoff(3), Duration::from_millis(40));
        assert_eq!(policy.backoff(4), Duration::from_millis(40));
        // Far past the shift width: still capped, no overflow.
        assert_eq!(policy.backoff(63), Duration::from_millis(40));
    }

    #[test]
    fn no_restarts_policy_has_zero_budget() {
        assert_eq!(RestartPolicy::no_restarts().max_restarts, 0);
    }
}
