//! The sharded sampler pool: configuration, submission, completion.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use ctgauss_core::{BuildError, CtSampler, KernelCache, SamplerSpec};
use ctgauss_prng::SeedTree;

use ctgauss_telemetry::MetricsSnapshot;

use crate::coalesce::{CoalesceConfig, Coalescer, DispatchLog, DispatchRecord};
use crate::fault::FaultPlan;
use crate::health::{AbandonLog, FailureEvent, FailureLog, HealthBoard, PoolHealth, ShardState};
use crate::registry::{ProfileInfo, ProfileRegistry, ProfileSource};
use crate::ring::{
    lock_recover, wait_recover, wait_timeout_recover, PushTimeoutError, Ring, TryPushError,
};
use crate::supervisor::{DeathNotice, Event, RestartPolicy, Supervisor, SupervisorShared};
use crate::worker::{
    epoch_streams, spawn_worker, Job, Member, StreamMode, WorkerContext, WorkerStats,
};

/// Lane-block width each worker executes the compiled kernel at:
/// `64 * lanes()` samples per kernel pass.
///
/// The width is a runtime choice (the scratch type is const-generic, so
/// the pool dispatches to a monomorphized worker loop per variant). By
/// the draw-order contract every width produces the *same* per-worker
/// sample stream; the width only trades dispatch amortization against
/// tail-batch latency.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum LaneWidth {
    /// Scalar batches (64 samples per pass).
    W1,
    /// 2-wide batches (128 samples per pass).
    W2,
    /// 4-wide batches (256 samples per pass) — the sweet spot on 256-bit
    /// vector units, and the default.
    #[default]
    W4,
    /// 8-wide batches (512 samples per pass).
    W8,
}

impl LaneWidth {
    /// Number of 64-bit lane blocks per kernel pass.
    pub fn lanes(self) -> usize {
        match self {
            LaneWidth::W1 => 1,
            LaneWidth::W2 => 2,
            LaneWidth::W4 => 4,
            LaneWidth::W8 => 8,
        }
    }
}

/// Identifies a sampler profile registered with a [`PoolBuilder`] —
/// the "sigma-profile id" requests carry.
///
/// The id is bound to the pool that minted it: submitting an id from a
/// *different* pool fails with [`PoolError::UnknownProfile`] rather than
/// silently hitting whatever profile shares its index there — a wrong
/// noise distribution is a correctness bug, not a recoverable mix-up.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ProfileId {
    /// The minting pool's unique token.
    pub(crate) pool: u64,
    /// Index into that pool's profile table.
    pub(crate) index: usize,
}

impl ProfileId {
    /// The profile's index in registration order — the pool-independent
    /// half of the id, which is what a recorded request trace stores so
    /// that [`replay_trace`](crate::replay_trace) (and a rebuilt pool)
    /// can resolve the same profile later.
    pub fn index(&self) -> usize {
        self.index
    }
}

/// One unit of work for the pool: `count` samples from `profile`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SampleRequest {
    /// Which registered sampler profile to draw from.
    pub profile: ProfileId,
    /// How many samples to return.
    pub count: usize,
}

/// Errors surfaced by the pool API.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PoolError {
    /// The request named a profile that was never registered.
    UnknownProfile,
    /// The target shard's ring is full (only from [`Pool::try_submit`];
    /// blocking submission waits instead).
    Backpressure,
    /// The pool is shutting down and no longer accepts requests.
    ShuttingDown,
    /// The target worker is gone: either it died without delivering this
    /// response (and the supervisor's restart budget could not bring the
    /// shard back in time), or a submission was routed to a shard that
    /// has been retired (budget exhausted; never part of normal
    /// shutdown, which drains). Because the request→shard map is fixed
    /// by the determinism contract, a dead shard is not skipped — the
    /// pool degrades to returning this error for its share of requests
    /// rather than silently re-routing streams.
    WorkerGone,
    /// A deadline elapsed: [`Pool::submit_timeout`] could not hand the
    /// request to its shard in time. Retryable — nothing was enqueued
    /// and no sequence number was consumed.
    TimedOut,
}

impl std::fmt::Display for PoolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PoolError::UnknownProfile => write!(f, "unknown sampler profile"),
            PoolError::Backpressure => write!(f, "shard queue full"),
            PoolError::ShuttingDown => write!(f, "pool is shutting down"),
            PoolError::WorkerGone => write!(f, "worker exited before responding"),
            PoolError::TimedOut => {
                write!(f, "deadline elapsed before the pool accepted the request")
            }
        }
    }
}

impl std::error::Error for PoolError {}

/// Shared slot a worker fills and a [`Ticket`] waits on (a one-shot
/// channel built on `Mutex` + `Condvar`).
#[derive(Debug, Default)]
pub(crate) struct Completion {
    state: Mutex<CompletionState>,
    cv: Condvar,
}

#[derive(Debug, Default)]
struct CompletionState {
    /// On success: the samples plus the submission sequence number *as
    /// echoed by the serving worker* — the audit trail a front end needs
    /// to detect misrouted/duplicated deliveries end to end.
    result: Option<Result<(u64, Vec<i32>), PoolError>>,
    finished_at: Option<Instant>,
}

impl Completion {
    pub(crate) fn fulfill(&self, seq: u64, samples: Vec<i32>) {
        self.deliver(Ok((seq, samples)));
    }

    pub(crate) fn abandon(&self) {
        self.deliver(Err(PoolError::WorkerGone));
    }

    fn deliver(&self, result: Result<(u64, Vec<i32>), PoolError>) {
        // Poison-recovering on purpose: delivery runs on worker threads
        // (including panicking ones, via Job::drop) — a poisoned slot
        // must still release its waiter.
        let mut state = lock_recover(&self.state);
        if state.result.is_none() {
            state.result = Some(result);
            state.finished_at = Some(Instant::now());
        }
        self.cv.notify_all();
    }
}

/// A pending response. Obtain from [`Pool::submit`]; redeem with
/// [`wait`](Ticket::wait).
#[derive(Debug)]
pub struct Ticket {
    completion: Arc<Completion>,
    submitted_at: Instant,
    request: SampleRequest,
    seq: u64,
}

/// A fulfilled request: the samples plus queue+service latency.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SampleResponse {
    /// The filled buffer, exactly `request.count` samples.
    pub samples: Vec<i32>,
    /// Submission-to-completion time, as observed by the worker.
    pub latency: Duration,
    /// The request this answers.
    pub request: SampleRequest,
    /// The pool-wide submission sequence number (shard = seq % threads),
    /// *as echoed back by the serving worker* — compare against
    /// [`Ticket::seq`] to audit for misrouted or duplicated deliveries
    /// end to end (the `pool_server --verify` front end does).
    pub seq: u64,
}

impl Ticket {
    /// The pool-wide submission sequence number of this request.
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// Blocks until the owning worker delivers the response.
    ///
    /// Unbounded: if the worker is wedged (not dead — a dead worker's
    /// jobs resolve to [`PoolError::WorkerGone`]), this waits forever.
    /// Callers that need a deadline use
    /// [`wait_timeout`](Ticket::wait_timeout).
    ///
    /// # Errors
    ///
    /// [`PoolError::WorkerGone`] if the worker exited without responding.
    pub fn wait(self) -> Result<SampleResponse, PoolError> {
        let completion = Arc::clone(&self.completion);
        let mut state = lock_recover(&completion.state);
        while state.result.is_none() {
            state = wait_recover(&completion.cv, state);
        }
        take_response(&mut state, self.submitted_at, self.request)
    }

    /// Blocks until the response arrives or `timeout` elapses.
    ///
    /// On timeout the ticket is handed back inside
    /// [`WaitError::TimedOut`] — the request is still in flight and the
    /// caller can keep waiting (this is a deadline on the *wait*, not a
    /// cancellation of the work).
    ///
    /// # Errors
    ///
    /// [`WaitError::Pool`] wrapping whatever [`wait`](Ticket::wait) can
    /// return, or [`WaitError::TimedOut`] carrying the ticket back.
    pub fn wait_timeout(self, timeout: Duration) -> Result<SampleResponse, WaitError> {
        let Some(deadline) = Instant::now().checked_add(timeout) else {
            // Deadline beyond Instant range: indistinguishable from "no
            // deadline".
            return self.wait().map_err(WaitError::Pool);
        };
        let completion = Arc::clone(&self.completion);
        let mut state = lock_recover(&completion.state);
        while state.result.is_none() {
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                drop(state);
                return Err(WaitError::TimedOut(self));
            }
            state = wait_timeout_recover(&completion.cv, state, remaining);
        }
        take_response(&mut state, self.submitted_at, self.request).map_err(WaitError::Pool)
    }
}

fn take_response(
    state: &mut CompletionState,
    submitted_at: Instant,
    request: SampleRequest,
) -> Result<SampleResponse, PoolError> {
    let (served_seq, samples) = state.result.take().expect("checked above")?;
    let finished = state.finished_at.expect("set with result");
    Ok(SampleResponse {
        samples,
        latency: finished.saturating_duration_since(submitted_at),
        request,
        seq: served_seq,
    })
}

/// Why [`Ticket::wait_timeout`] returned without a response.
#[derive(Debug)]
pub enum WaitError {
    /// The pool failed the request (see [`PoolError`]).
    Pool(PoolError),
    /// The deadline elapsed first. The request is still in flight; the
    /// ticket is handed back so the caller can keep waiting.
    TimedOut(Ticket),
}

impl WaitError {
    /// Collapses to a plain [`PoolError`], dropping a timed-out ticket
    /// (mapped to [`PoolError::TimedOut`]) — for callers that treat a
    /// deadline as fatal.
    pub fn into_pool_error(self) -> PoolError {
        match self {
            WaitError::Pool(error) => error,
            WaitError::TimedOut(_) => PoolError::TimedOut,
        }
    }
}

impl std::fmt::Display for WaitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WaitError::Pool(error) => error.fmt(f),
            WaitError::TimedOut(_) => write!(f, "deadline elapsed before the response arrived"),
        }
    }
}

impl std::error::Error for WaitError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WaitError::Pool(error) => Some(error),
            WaitError::TimedOut(_) => None,
        }
    }
}

/// Configures and spawns a [`Pool`].
#[derive(Debug)]
pub struct PoolBuilder {
    threads: usize,
    width: LaneWidth,
    queue_capacity: usize,
    /// No default: worker streams feed cryptographic consumers (Falcon
    /// signing noise), so a silently predictable seed would be a key-
    /// recovery hazard. [`spawn`](PoolBuilder::spawn) refuses to run
    /// unseeded.
    seeds: Option<SeedTree>,
    profiles: Vec<(Arc<CtSampler>, String, u32)>,
    /// Process-unique token binding minted [`ProfileId`]s to this pool.
    token: u64,
    faults: FaultPlan,
    restart_policy: RestartPolicy,
    coalesce: Option<CoalesceConfig>,
}

/// Source of process-unique pool tokens (see [`ProfileId`]).
static POOL_TOKENS: AtomicU64 = AtomicU64::new(0);

impl PoolBuilder {
    /// Number of worker threads / shards (default 1).
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        assert!(threads > 0, "pool needs at least one worker");
        self.threads = threads;
        self
    }

    /// Kernel lane-block width per worker (default [`LaneWidth::W4`]).
    #[must_use]
    pub fn width(mut self, width: LaneWidth) -> Self {
        self.width = width;
        self
    }

    /// Per-shard ring capacity in requests (default 256). A full shard
    /// blocks submission — the backpressure bound.
    #[must_use]
    pub fn queue_capacity(mut self, capacity: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be positive");
        self.queue_capacity = capacity;
        self
    }

    /// Root of the deterministic randomness tree. Worker `i` draws from
    /// the independent stream `seeds.fork_chacha(i)`. **Required** —
    /// [`spawn`](Self::spawn) panics without it: the streams feed
    /// cryptographic consumers, so the caller must own the decision of
    /// where the root entropy comes from (there is no safe default).
    #[must_use]
    pub fn seeds(mut self, seeds: SeedTree) -> Self {
        self.seeds = Some(seeds);
        self
    }

    /// Convenience: seeds the tree from a 64-bit value.
    #[must_use]
    pub fn seed_u64(self, seed: u64) -> Self {
        self.seeds(SeedTree::from_u64_seed(seed))
    }

    /// Arms a [`FaultPlan`] (default: none). Worker faults arm when
    /// [`spawn`](Self::spawn) runs; cache-load failures arm **now, on
    /// the calling thread**, so that subsequent
    /// [`profile`](Self::profile) builds on this builder hit them.
    #[must_use]
    pub fn faults(mut self, plan: FaultPlan) -> Self {
        plan.arm_cache_load_failures();
        self.faults = plan;
        self
    }

    /// Restart budget and backoff for the supervisor (default:
    /// [`RestartPolicy::default`] — 3 resurrections per shard).
    #[must_use]
    pub fn restart_policy(mut self, policy: RestartPolicy) -> Self {
        self.restart_policy = policy;
        self
    }

    /// Enables the v2 coalescing pool: cross-request batch staging
    /// ([`CoalesceConfig::max_wait`]), optional work stealing between
    /// shards, per-(shard, profile, epoch) PRNG streams, and the
    /// per-shard dispatch log that [`replay_coalesced`] reconstructs
    /// runs from.
    ///
    /// Semantics that change versus the default (v1) pool:
    ///
    /// * Requests of the same profile may be served together (one engine
    ///   pass, seq-tagged scatter) and a profile's home shard is
    ///   `profile_index % threads` instead of `seq % threads`.
    /// * Every submission variant accepts by staging under one stage
    ///   lock — [`Pool::try_submit`] and [`Pool::submit_timeout`] block
    ///   on that lock like [`Pool::submit`] does (staging itself is
    ///   fast; ring backpressure parks the *flush*, which is the same
    ///   head-of-line policy v1 had). Deadlines still bound the
    ///   response wait via [`Ticket::wait_timeout`].
    /// * Replay uses [`replay_coalesced`] over
    ///   [`Pool::dispatch_log`] (or, for clean no-fault single-threaded
    ///   runs, [`replay_coalesced_clean`]) instead of
    ///   [`replay_trace`](crate::replay_trace).
    ///
    /// [`replay_coalesced`]: crate::replay_coalesced
    /// [`replay_coalesced_clean`]: crate::replay_coalesced_clean
    #[must_use]
    pub fn coalesce(mut self, cfg: CoalesceConfig) -> Self {
        self.coalesce = Some(cfg);
        self
    }

    /// Builds and registers a sampler profile (the expensive Figure-4
    /// pipeline runs here, once, on the calling thread).
    ///
    /// # Errors
    ///
    /// Propagates [`BuildError`] from the pipeline.
    pub fn profile(&mut self, spec: &SamplerSpec) -> Result<ProfileId, BuildError> {
        let sampler = spec.build_shared()?;
        Ok(self.register(sampler, spec.sigma().to_owned(), spec.precision()))
    }

    /// Registers an already-built shared sampler; all workers clone the
    /// `Arc`, never the lowered kernel.
    pub fn shared_profile(&mut self, sampler: Arc<CtSampler>) -> ProfileId {
        self.register(sampler, "shared".to_owned(), 0)
    }

    fn register(&mut self, sampler: Arc<CtSampler>, label: String, precision: u32) -> ProfileId {
        self.profiles.push((sampler, label, precision));
        ProfileId {
            pool: self.token,
            index: self.profiles.len() - 1,
        }
    }

    /// Spawns the workers (epoch-0 streams), the supervisor, and returns
    /// the running pool.
    ///
    /// # Panics
    ///
    /// Panics if no profile was registered, or if no seed was provided
    /// via [`seeds`](Self::seeds) / [`seed_u64`](Self::seed_u64).
    pub fn spawn(self) -> Pool {
        assert!(
            !self.profiles.is_empty(),
            "register at least one sampler profile before spawning"
        );
        let seeds = self
            .seeds
            .expect("seed the pool (PoolBuilder::seeds / seed_u64) before spawning");
        let registry = Arc::new(ProfileRegistry::new());
        for (sampler, label, precision) in self.profiles {
            registry.add(sampler, label, precision);
        }
        let source = ProfileSource::Registry(Arc::clone(&registry));
        let mode = if self.coalesce.is_some() {
            StreamMode::PerProfile
        } else {
            StreamMode::Legacy
        };
        let steal = self.threads > 1 && self.coalesce.as_ref().is_some_and(|cfg| cfg.steal);
        let armed = self.faults.arm_workers(self.threads);
        let shared = Arc::new(SupervisorShared::new());
        let health = Arc::new(HealthBoard::new(self.threads));
        let failures = Arc::new(FailureLog::default());
        let closing = Arc::new(AtomicBool::new(false));
        let shards: Vec<Arc<Ring<Job>>> = (0..self.threads)
            .map(|_| Arc::new(Ring::new(self.queue_capacity)))
            .collect();
        let stats: Vec<Arc<WorkerStats>> = (0..self.threads)
            .map(|_| Arc::new(WorkerStats::default()))
            .collect();
        let abandons: Vec<Arc<AbandonLog>> = (0..self.threads)
            .map(|_| Arc::new(AbandonLog::default()))
            .collect();
        let dispatch: Vec<Arc<DispatchLog>> = if self.coalesce.is_some() {
            (0..self.threads)
                .map(|_| Arc::new(DispatchLog::default()))
                .collect()
        } else {
            Vec::new()
        };
        let mut contexts = Vec::with_capacity(self.threads);
        let mut handles = Vec::with_capacity(self.threads);
        for (w, worker_faults) in armed.iter().enumerate() {
            let siblings = if steal {
                (1..self.threads)
                    .map(|offset| Arc::clone(&shards[(w + offset) % self.threads]))
                    .collect()
            } else {
                Vec::new()
            };
            let ctx = WorkerContext {
                index: w,
                width: self.width,
                shard: Arc::clone(&shards[w]),
                siblings,
                abandons: Arc::clone(&abandons[w]),
                source: source.clone(),
                stats: Arc::clone(&stats[w]),
                faults: Arc::clone(worker_faults),
                dispatch: dispatch.get(w).map(Arc::clone),
            };
            handles.push(Some(spawn_worker(
                ctx.clone(),
                epoch_streams(mode, &seeds, w as u64, 0),
                DeathNotice::new(&shared, w),
            )));
            contexts.push(ctx);
        }
        let supervisor = Supervisor {
            shared: Arc::clone(&shared),
            contexts,
            seeds,
            mode,
            health: Arc::clone(&health),
            log: Arc::clone(&failures),
            policy: self.restart_policy,
            closing: Arc::clone(&closing),
            handles,
        }
        .spawn();
        let coalescer = self.coalesce.as_ref().map(|cfg| {
            Arc::new(Coalescer::new(
                cfg,
                64 * self.width.lanes(),
                shards.clone(),
                abandons.clone(),
            ))
        });
        let flusher = coalescer.as_ref().map(Coalescer::spawn_flusher);
        Pool {
            shards,
            stats,
            abandons,
            supervisor: Mutex::new(Some(supervisor)),
            supervisor_mail: shared,
            lane: SubmitLane::default(),
            submitted: AtomicU64::new(0),
            registry,
            coalescer,
            flusher: Mutex::new(flusher),
            dispatch,
            width: self.width,
            token: self.token,
            closing,
            health,
            failures,
            started_at: Instant::now(),
        }
    }
}

/// A sharded, multi-threaded sampling service over shared compiled
/// kernels.
///
/// `threads` workers each own an independent PRNG stream (forked from
/// one [`SeedTree`]), reusable kernel scratch, and a bounded request
/// ring. Requests are assigned to shards round-robin by submission
/// sequence number, so the mapping of requests to worker streams — and
/// therefore every response — is a pure function of (seed, request
/// trace): the service is replayable. See `DESIGN.md` ("Service layer")
/// for the architecture diagram and the full determinism contract.
///
/// # Determinism contract
///
/// * In a **single-profile** pool, worker `w`'s concatenated output for
///   the requests it serves equals `CtSampler::sample_into` over one
///   buffer of the same total length, driven by `seeds.fork_chacha(w)`
///   — bit for bit, for every [`LaneWidth`]. With `threads = 1` the
///   whole pool therefore reproduces the scalar `sample_into` stream.
///   With **multiple profiles** a shard's one generator is interleaved
///   across its profiles in request order, so the closed-form
///   `sample_into` equivalence no longer applies per profile — but
///   every response is still a pure function of (seed, request trace)
///   and replays exactly.
/// * Small requests are coalesced: workers only ever run *full*
///   `64 * W`-sample kernel batches, carrying leftover samples to the
///   next request on the same shard and profile. No randomness is
///   discarded between requests.
///
/// # Examples
///
/// ```
/// use ctgauss_core::SamplerSpec;
/// use ctgauss_pool::{Pool, SampleRequest};
///
/// let mut builder = Pool::builder().threads(2).seed_u64(7);
/// let profile = builder.profile(&SamplerSpec::new("2", 16)).unwrap();
/// let pool = builder.spawn();
/// let ticket = pool.submit(SampleRequest { profile, count: 100 }).unwrap();
/// let response = ticket.wait().unwrap();
/// assert_eq!(response.samples.len(), 100);
/// ```
#[derive(Debug)]
pub struct Pool {
    shards: Vec<Arc<Ring<Job>>>,
    stats: Vec<Arc<WorkerStats>>,
    abandons: Vec<Arc<AbandonLog>>,
    /// The supervisor owns the worker handles; the pool only joins the
    /// supervisor (taken once, by whichever [`shutdown`](Pool::shutdown)
    /// call gets there first).
    supervisor: Mutex<Option<JoinHandle<()>>>,
    supervisor_mail: Arc<SupervisorShared>,
    /// Serializes sequence assignment *and* shard push, so request `i`
    /// always lands in slot `i mod threads` in arrival order — the
    /// invariant replayability rests on. Held across a full shard's
    /// blocking push: backpressure on one shard intentionally stalls all
    /// submitters (head-of-line; see DESIGN.md for the policy rationale).
    /// A hand-rolled lock (not a bare `Mutex` guard held across the
    /// push) so that [`submit_timeout`](Pool::submit_timeout) can bound
    /// the wait for the lane itself, not just for the ring slot.
    lane: SubmitLane,
    /// Requests accepted so far (mirror of the lane seq readable without
    /// the lock, for stats).
    submitted: AtomicU64,
    /// The runtime profile table (hot-loadable in v2; the frozen builder
    /// registrations otherwise).
    registry: Arc<ProfileRegistry>,
    /// The v2 staging layer (None for a v1 pool).
    coalescer: Option<Arc<Coalescer>>,
    /// The deadline-flusher thread, joined by shutdown after sealing.
    flusher: Mutex<Option<JoinHandle<()>>>,
    /// Per-shard gang dispatch logs (empty for a v1 pool).
    dispatch: Vec<Arc<DispatchLog>>,
    width: LaneWidth,
    /// Matches the `pool` field of every [`ProfileId`] this pool minted.
    token: u64,
    /// Set by [`shutdown`](Pool::shutdown) before the rings close, so a
    /// closed ring can be attributed to shutdown vs. a retired shard.
    /// Shared with the supervisor, which must not resurrect into a
    /// closing pool.
    closing: Arc<AtomicBool>,
    health: Arc<HealthBoard>,
    failures: Arc<FailureLog>,
    /// When the pool spawned — the denominator of the `samples_per_sec`
    /// gauge in [`metrics`](Pool::metrics).
    started_at: Instant,
}

/// The submission lane: a condvar-based lock over the next sequence
/// number, held (logically, not as a `MutexGuard`) across the shard
/// push. See the field docs on [`Pool::lane`].
#[derive(Debug, Default)]
struct SubmitLane {
    state: Mutex<LaneState>,
    cv: Condvar,
}

#[derive(Debug, Default)]
struct LaneState {
    held: bool,
    seq: u64,
}

impl SubmitLane {
    /// Takes the lane and returns the sequence number to submit under.
    /// `block = false` refuses a held lane with `Backpressure`;
    /// a `deadline` bounds the wait with `TimedOut`.
    fn acquire(&self, block: bool, deadline: Option<Instant>) -> Result<u64, PoolError> {
        let mut state = lock_recover(&self.state);
        while state.held {
            if !block {
                return Err(PoolError::Backpressure);
            }
            match deadline {
                None => state = wait_recover(&self.cv, state),
                Some(deadline) => {
                    let remaining = deadline.saturating_duration_since(Instant::now());
                    if remaining.is_zero() {
                        return Err(PoolError::TimedOut);
                    }
                    state = wait_timeout_recover(&self.cv, state, remaining);
                }
            }
        }
        state.held = true;
        Ok(state.seq)
    }

    /// Releases the lane. `consume` advances the sequence number — true
    /// whenever the submission's shard slot is settled (enqueued, or
    /// refused by a closed ring, which is an answer too); false when the
    /// attempt may be retried under the same seq (full ring, timeout).
    /// Returns the next sequence number.
    fn release(&self, consume: bool) -> u64 {
        let mut state = lock_recover(&self.state);
        if consume {
            state.seq += 1;
        }
        state.held = false;
        self.cv.notify_one();
        let next = state.seq;
        drop(state);
        next
    }
}

/// How [`Pool::submit_inner`] should wait for queue space.
#[derive(Clone, Copy)]
enum SubmitMode {
    Block,
    NonBlock,
    Deadline(Instant),
}

impl Pool {
    /// Starts configuring a pool.
    pub fn builder() -> PoolBuilder {
        PoolBuilder {
            threads: 1,
            width: LaneWidth::default(),
            queue_capacity: 256,
            seeds: None,
            profiles: Vec::new(),
            token: POOL_TOKENS.fetch_add(1, Ordering::Relaxed),
            faults: FaultPlan::default(),
            restart_policy: RestartPolicy::default(),
            coalesce: None,
        }
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.shards.len()
    }

    /// The configured kernel lane width.
    pub fn width(&self) -> LaneWidth {
        self.width
    }

    /// The shared sampler behind a profile id. Resolves retired profiles
    /// too — the id stays meaningful for auditing and replay after
    /// [`retire_profile`](Self::retire_profile); only *submission* is
    /// gated on liveness.
    ///
    /// # Errors
    ///
    /// [`PoolError::UnknownProfile`] for an id this pool did not mint.
    pub fn profile_sampler(&self, profile: ProfileId) -> Result<Arc<CtSampler>, PoolError> {
        if profile.pool != self.token {
            return Err(PoolError::UnknownProfile);
        }
        self.registry
            .sampler(profile.index)
            .ok_or(PoolError::UnknownProfile)
    }

    /// Submission gate: the id must be this pool's and the slot live.
    fn check_submittable(&self, profile: ProfileId) -> Result<(), PoolError> {
        if profile.pool != self.token {
            return Err(PoolError::UnknownProfile);
        }
        self.registry
            .active_sampler(profile.index)
            .map(|_| ())
            .ok_or(PoolError::UnknownProfile)
    }

    /// Hot-loads a new profile into the running pool, building it
    /// through the process-default [`KernelCache`] (honouring
    /// `CTGAUSS_CACHE_DIR`, with transparent fallback to in-process
    /// synthesis when the cached artifact is missing or corrupted). The
    /// returned id is immediately submittable; existing ids are
    /// unaffected (index stability).
    ///
    /// # Errors
    ///
    /// Propagates [`BuildError`] from the synthesis pipeline.
    pub fn add_profile(&self, spec: &SamplerSpec) -> Result<ProfileId, BuildError> {
        self.add_profile_with(spec, &KernelCache::from_env())
    }

    /// [`add_profile`](Self::add_profile) through an explicit
    /// [`KernelCache`] (e.g. [`KernelCache::at`] for a pinned artifact
    /// directory, or [`KernelCache::disabled`] to force synthesis).
    ///
    /// # Errors
    ///
    /// Propagates [`BuildError`] from the synthesis pipeline.
    pub fn add_profile_with(
        &self,
        spec: &SamplerSpec,
        cache: &KernelCache,
    ) -> Result<ProfileId, BuildError> {
        let (sampler, _trace) = spec.build_shared_with(cache)?;
        let index = self
            .registry
            .add(sampler, spec.sigma().to_owned(), spec.precision());
        Ok(ProfileId {
            pool: self.token,
            index,
        })
    }

    /// Registers an already-built shared sampler at runtime.
    pub fn add_shared_profile(&self, sampler: Arc<CtSampler>, label: &str) -> ProfileId {
        let index = self.registry.add(sampler, label.to_owned(), 0);
        ProfileId {
            pool: self.token,
            index,
        }
    }

    /// Retires a profile: new submissions fail with
    /// [`PoolError::UnknownProfile`], while requests already accepted
    /// (staged, queued, or being served) complete normally. Idempotent;
    /// the slot index is never reused, so the id stays stable for replay.
    ///
    /// # Errors
    ///
    /// [`PoolError::UnknownProfile`] for an id this pool did not mint.
    pub fn retire_profile(&self, profile: ProfileId) -> Result<(), PoolError> {
        if profile.pool != self.token {
            return Err(PoolError::UnknownProfile);
        }
        if self.registry.retire(profile.index) {
            Ok(())
        } else {
            Err(PoolError::UnknownProfile)
        }
    }

    /// A snapshot of every registered profile (including retired slots),
    /// in index order — what the RPC `profiles` endpoint serves.
    pub fn profiles(&self) -> Vec<ProfileInfo> {
        self.registry.snapshot()
    }

    /// The per-shard gang dispatch logs of a coalescing (v2) pool: for
    /// each shard, every gang it served, in serve order. Together with
    /// (seed, trace, width, failure log) this reconstructs every
    /// delivered sample bit-exactly via
    /// [`replay_coalesced`](crate::replay_coalesced) — including runs
    /// with work stealing and worker deaths. Empty for a v1 pool.
    ///
    /// Complete (covers every serve) once [`shutdown`](Self::shutdown)
    /// has returned; mid-run snapshots are valid prefixes.
    pub fn dispatch_log(&self) -> Vec<Vec<DispatchRecord>> {
        self.dispatch.iter().map(|log| log.snapshot()).collect()
    }

    /// Gangs served by a worker other than their home shard, so far.
    pub fn steals(&self) -> u64 {
        self.stats.iter().map(|s| s.steals()).sum()
    }

    /// Submits a request, blocking while the target shard is full.
    ///
    /// # Errors
    ///
    /// [`PoolError::UnknownProfile`] or [`PoolError::ShuttingDown`].
    pub fn submit(&self, request: SampleRequest) -> Result<Ticket, PoolError> {
        self.submit_inner(request, SubmitMode::Block)
    }

    /// Submits a request without blocking on backpressure: a full target
    /// shard *or* a contended submission lane (any other submitter holds
    /// the sequence lock — possibly parked on a full shard, possibly
    /// just overlapping for its microsecond-scale critical section)
    /// returns [`PoolError::Backpressure`] immediately instead of
    /// waiting. Backpressure is therefore a retryable "not now", not
    /// proof that queues are full.
    ///
    /// # Errors
    ///
    /// [`PoolError::Backpressure`] as above, plus everything
    /// [`submit`](Self::submit) can return.
    pub fn try_submit(&self, request: SampleRequest) -> Result<Ticket, PoolError> {
        self.submit_inner(request, SubmitMode::NonBlock)
    }

    /// Submits with a deadline on the total wait — the submission lane
    /// *and* the ring slot together. The bounded-latency variant of
    /// [`submit`](Self::submit) for callers that must not wedge behind a
    /// stalled shard.
    ///
    /// # Errors
    ///
    /// [`PoolError::TimedOut`] when the deadline elapses first — nothing
    /// was enqueued, no sequence number was consumed, and retrying is
    /// sound (see [`submit_with_retry`](crate::submit_with_retry)).
    /// Plus everything [`submit`](Self::submit) can return.
    pub fn submit_timeout(
        &self,
        request: SampleRequest,
        timeout: Duration,
    ) -> Result<Ticket, PoolError> {
        match Instant::now().checked_add(timeout) {
            Some(deadline) => self.submit_inner(request, SubmitMode::Deadline(deadline)),
            // Beyond Instant range: indistinguishable from unbounded.
            None => self.submit_inner(request, SubmitMode::Block),
        }
    }

    fn submit_inner(&self, request: SampleRequest, mode: SubmitMode) -> Result<Ticket, PoolError> {
        self.check_submittable(request.profile)?;
        let completion = Arc::new(Completion::default());
        let submitted_at = Instant::now();
        if let Some(coalescer) = &self.coalescer {
            // v2: all submission variants accept by staging. The stage
            // lock (and, through an inline flush into a full ring, ring
            // space) is the only wait — the same head-of-line policy as
            // the v1 lane, so non-blocking/deadline modes share it.
            let seq = coalescer.stage(
                request.profile.index,
                request.count,
                submitted_at,
                Arc::clone(&completion),
            )?;
            self.submitted.fetch_max(seq + 1, Ordering::Relaxed);
            return Ok(Ticket {
                completion,
                submitted_at,
                request,
                seq,
            });
        }
        let (block, deadline) = match mode {
            SubmitMode::Block => (true, None),
            SubmitMode::NonBlock => (false, None),
            SubmitMode::Deadline(deadline) => (true, Some(deadline)),
        };
        let seq = self.lane.acquire(block, deadline)?;
        let shard_index = (seq % self.shards.len() as u64) as usize;
        let shard = &self.shards[shard_index];
        let job = Job::single(
            request.profile.index,
            shard_index,
            Member::new(seq, request.count, submitted_at, Arc::clone(&completion)),
            Arc::clone(&self.abandons[shard_index]),
        );
        // A refused push comes back in three flavors with different seq
        // accounting:
        //  * accepted — the seq is consumed;
        //  * closed ring — the shard is retired (or the pool is shutting
        //    down). The seq is consumed *anyway*: the request→shard map
        //    stays total, the dead shard eats its 1/threads share of the
        //    sequence space as immediate `WorkerGone` errors, and traffic
        //    keeps flowing to the live shards;
        //  * full ring / deadline — retryable, the seq is NOT consumed,
        //    so a retry lands on the same shard and determinism is
        //    independent of backpressure timing.
        let refused: Option<PoolError> = match mode {
            SubmitMode::Block => match shard.push(job) {
                Ok(()) => None,
                Err(job) => {
                    job.defuse();
                    Some(self.closed_error())
                }
            },
            SubmitMode::NonBlock => match shard.try_push(job) {
                Ok(()) => None,
                Err(TryPushError::Full(job)) => {
                    job.defuse();
                    self.lane.release(false);
                    return Err(PoolError::Backpressure);
                }
                Err(TryPushError::Closed(job)) => {
                    job.defuse();
                    Some(self.closed_error())
                }
            },
            SubmitMode::Deadline(deadline) => {
                let remaining = deadline.saturating_duration_since(Instant::now());
                match shard.push_timeout(job, remaining) {
                    Ok(()) => None,
                    Err(PushTimeoutError::TimedOut(job)) => {
                        job.defuse();
                        self.lane.release(false);
                        return Err(PoolError::TimedOut);
                    }
                    Err(PushTimeoutError::Closed(job)) => {
                        job.defuse();
                        Some(self.closed_error())
                    }
                }
            }
        };
        let next = self.lane.release(true);
        self.submitted.store(next, Ordering::Relaxed);
        match refused {
            Some(error) => Err(error),
            None => Ok(Ticket {
                completion,
                submitted_at,
                request,
                seq,
            }),
        }
    }

    /// A closed ring during normal operation means that shard was
    /// retired by the supervisor; only report ShuttingDown when the pool
    /// is actually shutting down.
    fn closed_error(&self) -> PoolError {
        if self.closing.load(Ordering::Relaxed) {
            PoolError::ShuttingDown
        } else {
            PoolError::WorkerGone
        }
    }

    /// Blocking convenience: draws `out.len()` samples from `profile`
    /// into the caller's buffer.
    ///
    /// The request is served whole by one worker (requests are the unit
    /// of sharding), and the worker's response buffer is copied into
    /// `out` — callers who can take ownership should prefer
    /// [`sample_vec`](Self::sample_vec), which hands the buffer over
    /// without the extra copy; callers wanting parallelism across
    /// workers should submit several smaller requests.
    ///
    /// # Errors
    ///
    /// See [`submit`](Self::submit) and [`Ticket::wait`].
    pub fn sample_into(&self, profile: ProfileId, out: &mut [i32]) -> Result<(), PoolError> {
        let response = self
            .submit(SampleRequest {
                profile,
                count: out.len(),
            })?
            .wait()?;
        out.copy_from_slice(&response.samples);
        Ok(())
    }

    /// Blocking convenience: draws `count` samples from `profile`.
    ///
    /// # Errors
    ///
    /// See [`submit`](Self::submit) and [`Ticket::wait`].
    pub fn sample_vec(&self, profile: ProfileId, count: usize) -> Result<Vec<i32>, PoolError> {
        Ok(self
            .submit(SampleRequest { profile, count })?
            .wait()?
            .samples)
    }

    /// The pool's observable state as a [`MetricsSnapshot`] — the one
    /// stats API (no parallel counter structs).
    ///
    /// Two sections:
    ///
    /// * `pool` — lifetime totals (`requests_total`, `samples_total`,
    ///   `batches_total`, `submitted`, `restarts`, `abandoned`), derived
    ///   gauges (`samples_per_sec` over the pool's uptime,
    ///   `batch_fill_ratio` = samples delivered / samples generated by
    ///   full `64 * W` kernel batches, `queue_depth` summed over shards),
    ///   and — with the `metrics` feature (default) — the
    ///   submit-to-completion `latency_ns` histogram merged across
    ///   shards.
    /// * `pool_shards` — the same counters per shard (`shard3_requests`,
    ///   …), each shard's live queue depth, restart/abandon counts, and
    ///   its health state as a label.
    ///
    /// Values are racy snapshots of relaxed atomics: totals are
    /// monotonic, cross-counter consistency is approximate. Reading
    /// metrics never perturbs the draw-order/replay contract — the
    /// instruments only observe.
    pub fn metrics(&self) -> MetricsSnapshot {
        let requests: u64 = self.stats.iter().map(|s| s.requests()).sum();
        let samples: u64 = self.stats.iter().map(|s| s.samples()).sum();
        let batches: u64 = self.stats.iter().map(|s| s.batches()).sum();
        let fresh: u64 = self.stats.iter().map(|s| s.fresh()).sum();
        let steals: u64 = self.stats.iter().map(|s| s.steals()).sum();
        let queue_depth: usize = self.shards.iter().map(|s| s.len()).sum();
        let health = self.health.snapshot();
        let uptime = self.started_at.elapsed().as_secs_f64();
        let batch_samples = batches * 64 * self.width.lanes() as u64;

        let (mut alive, mut restarting, mut dead) = (0u64, 0u64, 0u64);
        for shard in &health.shards {
            match shard.state {
                ShardState::Alive { .. } => alive += 1,
                ShardState::Restarting { .. } => restarting += 1,
                ShardState::Dead => dead += 1,
            }
        }
        // The one-word health verdict remote stats consumers key on:
        // every shard alive = ok; any shard dead = failed (capacity is
        // permanently reduced); otherwise degraded (a resurrection is in
        // flight).
        let verdict = if dead > 0 {
            "failed"
        } else if restarting > 0 {
            "degraded"
        } else {
            "ok"
        };

        let mut snap = MetricsSnapshot::new();
        let pool = snap.section("pool");
        pool.label("health", verdict)
            .counter("shards_alive", alive)
            .counter("shards_restarting", restarting)
            .counter("shards_dead", dead)
            .label("width", format!("W{}", self.width.lanes()))
            .counter("threads", self.shards.len() as u64)
            .counter("submitted", self.submitted())
            .counter("requests_total", requests)
            .counter("samples_total", samples)
            .counter("batches_total", batches)
            .counter("restarts", health.restarts())
            .counter("abandoned", health.abandoned())
            .gauge("uptime_secs", uptime)
            .gauge(
                "samples_per_sec",
                if uptime > 0.0 {
                    samples as f64 / uptime
                } else {
                    0.0
                },
            )
            .gauge(
                "batch_fill_ratio",
                if batch_samples > 0 {
                    samples as f64 / batch_samples as f64
                } else {
                    0.0
                },
            )
            .gauge("queue_depth", queue_depth as f64);
        // Kernel-batch fill from *fresh* draws only: carried-over samples
        // served from a previous batch's remainder don't count, so a
        // tiny-request workload without coalescing shows its true
        // underfill here while `batch_fill_ratio` (delivered / generated)
        // stays an amortization gauge.
        pool.counter("fresh_total", fresh)
            .counter("steals_total", steals)
            .gauge(
                "dispatch_fill_ratio",
                if batch_samples > 0 {
                    fresh as f64 / batch_samples as f64
                } else {
                    0.0
                },
            );
        let (active, retired) = self.registry.counts();
        pool.counter("profiles_active", active)
            .counter("profiles_retired", retired);
        if let Some(coalescer) = &self.coalescer {
            pool.counter("gangs_flushed", coalescer.gangs_flushed())
                .counter("gang_members_flushed", coalescer.members_flushed())
                .gauge("staged_depth", coalescer.staged_now() as f64);
        }
        #[cfg(feature = "metrics")]
        {
            let mut latency = ctgauss_telemetry::HistogramSnapshot::empty();
            for stats in &self.stats {
                latency.merge(&stats.latency.snapshot());
            }
            pool.histogram("latency_ns", latency);
            if let Some(coalescer) = &self.coalescer {
                pool.histogram("staging_wait_ns", coalescer.staging_wait.snapshot());
            }
        }

        let shards = snap.section("pool_shards");
        for (i, ((stats, shard), health)) in self
            .stats
            .iter()
            .zip(&self.shards)
            .zip(&health.shards)
            .enumerate()
        {
            let state = match health.state {
                ShardState::Alive { epoch } => format!("alive:e{epoch}"),
                ShardState::Restarting { epoch } => format!("restarting:e{epoch}"),
                ShardState::Dead => "dead".to_owned(),
            };
            shards
                .label(format!("shard{i}_state"), state)
                .counter(format!("shard{i}_requests"), stats.requests())
                .counter(format!("shard{i}_samples"), stats.samples())
                .counter(format!("shard{i}_batches"), stats.batches())
                .counter(format!("shard{i}_restarts"), u64::from(health.restarts))
                .counter(format!("shard{i}_abandoned"), health.abandoned)
                .counter(format!("shard{i}_steals"), stats.steals())
                .gauge(format!("shard{i}_queue_depth"), shard.len() as f64);
        }
        snap
    }

    /// Requests accepted so far (== the next sequence number).
    pub fn submitted(&self) -> u64 {
        self.submitted.load(Ordering::Relaxed)
    }

    /// Live per-shard health: state (alive / restarting / dead), restart
    /// counts, and abandoned-request totals.
    pub fn health(&self) -> PoolHealth {
        self.health.snapshot()
    }

    /// The failure log so far: one [`FailureEvent`] per worker death, in
    /// the order the supervisor processed them. Together with the seed
    /// and the request trace this fully determines every response — see
    /// [`replay_trace`](crate::replay_trace). The log is complete (every
    /// death processed, every abandoned seq attributed) once
    /// [`shutdown`](Pool::shutdown) has returned.
    pub fn failure_log(&self) -> Vec<FailureEvent> {
        self.failures.snapshot()
    }

    /// Stops accepting requests, drains every shard, and joins the
    /// supervisor (which joins the workers). Called automatically on
    /// drop; call it explicitly to observe completion.
    pub fn shutdown(&self) {
        self.closing.store(true, Ordering::Release);
        // v2: seal staging (new submissions now fail ShuttingDown) and
        // dispatch everything staged *before* closing the rings, so the
        // final gangs land on live workers; then join the flusher (it
        // exits on the seal).
        if let Some(coalescer) = &self.coalescer {
            coalescer.seal_and_flush();
        }
        if let Some(handle) = lock_recover(&self.flusher).take() {
            if let Err(payload) = handle.join() {
                if !std::thread::panicking() {
                    std::panic::resume_unwind(payload);
                }
            }
        }
        for shard in &self.shards {
            shard.close();
        }
        let supervisor = lock_recover(&self.supervisor).take();
        if let Some(handle) = supervisor {
            self.supervisor_mail.send(Event::Shutdown);
            // The supervisor absorbs worker panics by design (that is
            // its job); a panic *of the supervisor itself* is a bug and
            // is surfaced — unless this thread is already unwinding,
            // where re-raising would double-panic and abort, masking the
            // original error.
            if let Err(payload) = handle.join() {
                if !std::thread::panicking() {
                    std::panic::resume_unwind(payload);
                }
            }
        }
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        self.shutdown();
    }
}
