//! A sharded, multi-threaded sampling service over the compiled
//! constant-time Knuth-Yao kernel.
//!
//! The per-core kernel is lane-width-generic and fast (`ctgauss-core`);
//! what remains between it and the roadmap's "heavy traffic" target is
//! scheduling: keeping N cores busy without giving up the bit-exact
//! replayability the rest of the workspace is built on. This crate is
//! that layer:
//!
//! * [`Pool`] owns `threads` workers, each with its own lowered-kernel
//!   handle (an `Arc<CtSampler>` shared via
//!   [`SamplerSpec::build_shared`](ctgauss_core::SamplerSpec) — the
//!   Figure-4 pipeline runs once, not once per worker), reusable
//!   `BatchScratch`, and an independent PRNG stream forked from one
//!   [`SeedTree`](ctgauss_prng::SeedTree) by worker index.
//! * Requests ([`SampleRequest`]: sigma-profile id + count) flow through
//!   bounded per-shard rings with round-robin assignment by submission
//!   sequence number; a full ring blocks submitters (backpressure).
//!   Responses come back through [`Ticket`]s or the blocking
//!   [`Pool::sample_into`] / [`Pool::sample_vec`].
//! * Workers coalesce: the kernel only ever runs full `64 * W`-sample
//!   batches, and leftovers carry over to the next request — so small
//!   requests cost a fraction of a batch, not a whole one, and no
//!   randomness is discarded.
//! * Determinism: a single-profile pool with `threads = 1` reproduces
//!   the scalar [`CtSampler::sample_into`](ctgauss_core::CtSampler)
//!   stream over the worker's forked generator bit for bit (any width);
//!   for any `(threads, width, profiles)` the full response set is a
//!   pure function of (seed, request trace). Tested in
//!   `tests/determinism.rs`.
//! * [`PooledBase`] plugs the service into the Falcon signing path as a
//!   drop-in [`BaseSampler`](ctgauss_falcon::sign::BaseSampler).
//!
//! The load-generator front end lives in `examples/pool_server.rs`; the
//! thread-scaling numbers are in `EXPERIMENTS.md`.
//!
//! # Examples
//!
//! ```
//! use ctgauss_core::SamplerSpec;
//! use ctgauss_pool::{LaneWidth, Pool};
//!
//! let mut builder = Pool::builder().threads(4).width(LaneWidth::W4).seed_u64(42);
//! let profile = builder.profile(&SamplerSpec::new("2", 16)).unwrap();
//! let pool = builder.spawn();
//! let mut noise = vec![0i32; 4096];
//! pool.sample_into(profile, &mut noise).unwrap();
//! assert!(noise.iter().any(|&s| s != 0));
//! ```
#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod coalesce;
mod falcon_base;
mod fault;
mod health;
mod pool;
mod registry;
mod replay;
mod retry;
mod ring;
mod supervisor;
mod worker;

pub use coalesce::{CoalesceConfig, DispatchRecord};
pub use falcon_base::{falcon_profile_spec, PooledBase};
pub use fault::{FaultKind, FaultPlan, FaultSite, FaultSpecError, WorkerFault, FAULTS_ENV};
pub use health::{FailureEvent, FailureOutcome, PoolHealth, ShardHealth, ShardState};
pub use pool::{
    LaneWidth, Pool, PoolBuilder, PoolError, ProfileId, SampleRequest, SampleResponse, Ticket,
    WaitError,
};
pub use registry::ProfileInfo;
// Re-exported so pool consumers read `Pool::metrics()` without naming
// the telemetry crate themselves.
pub use ctgauss_telemetry::{HistogramSnapshot, MetricsSnapshot};
pub use replay::{replay_coalesced, replay_coalesced_clean, replay_trace, TraceEntry};
pub use retry::{submit_with_retry, Backoff, RetryPolicy};
pub use supervisor::RestartPolicy;
