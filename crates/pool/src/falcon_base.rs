//! Falcon integration: a pool-backed base Gaussian for the signing path.

use ctgauss_core::SamplerSpec;
use ctgauss_falcon::sign::BaseSampler;

use crate::pool::{Pool, PoolError, ProfileId};

/// The Falcon base-distribution profile (`D_{Z, 2, 0}`, n = 128, tau =
/// 13 — the paper's Table 1 configuration). Register this with the pool
/// that will back [`PooledBase`].
pub fn falcon_profile_spec() -> SamplerSpec {
    SamplerSpec::new("2", 128).tail_cut(13)
}

/// A [`BaseSampler`] that refills its buffer from a shared [`Pool`]
/// instead of owning a sampler and PRNG — the signing path's handle into
/// the service layer. Many signers can share one pool; each `PooledBase`
/// is its own request stream, so per-signer draw order stays the pool's
/// deterministic (seed, trace) function.
#[derive(Debug)]
pub struct PooledBase<'p> {
    pool: &'p Pool,
    profile: ProfileId,
    buf: Vec<i32>,
    pos: usize,
    refill: usize,
}

impl<'p> PooledBase<'p> {
    /// Default samples fetched per pool round trip: one 8-wide batch,
    /// matching the owned `KnuthYaoCtBase`'s refill granularity.
    pub const DEFAULT_REFILL: usize = 64 * 8;

    /// Creates a handle drawing from `profile` on `pool`.
    ///
    /// # Errors
    ///
    /// [`PoolError::UnknownProfile`] if `profile` is not registered on
    /// `pool`.
    pub fn new(pool: &'p Pool, profile: ProfileId) -> Result<Self, PoolError> {
        Self::with_refill(pool, profile, Self::DEFAULT_REFILL)
    }

    /// Creates a handle with an explicit refill granularity (samples per
    /// pool request; latency/throughput knob).
    ///
    /// # Errors
    ///
    /// [`PoolError::UnknownProfile`] if `profile` is not registered on
    /// `pool`.
    pub fn with_refill(
        pool: &'p Pool,
        profile: ProfileId,
        refill: usize,
    ) -> Result<Self, PoolError> {
        assert!(refill > 0, "refill must be positive");
        pool.profile_sampler(profile)?;
        Ok(PooledBase {
            pool,
            profile,
            buf: Vec::new(),
            pos: 0,
            refill,
        })
    }
}

impl BaseSampler for PooledBase<'_> {
    fn next(&mut self) -> i32 {
        if self.pos == self.buf.len() {
            self.buf = self
                .pool
                .sample_vec(self.profile, self.refill)
                .expect("pool serves base-sampler refills");
            self.pos = 0;
        }
        let v = self.buf[self.pos];
        self.pos += 1;
        v
    }

    fn name(&self) -> &'static str {
        "bitsliced Knuth-Yao (pooled)"
    }
}
