//! Cross-request batch coalescing: the v2 staging layer.
//!
//! The kernel only ever runs full `64·W`-sample batches, so a workload
//! of tiny requests leaves most of every batch feeding the carry instead
//! of a waiter. The [`Coalescer`] fixes that by *staging* small
//! same-profile submissions in per-profile buckets and dispatching them
//! as one **gang** ([`Job`]) once the bucket covers a full kernel batch
//! — or once the oldest staged member has waited `max_wait`, whichever
//! comes first. The serving worker runs one engine pass over the gang's
//! total and scatters the samples back to the members in seq order.
//!
//! Determinism contract: all staging, seq assignment, and ring pushes
//! happen under one stage lock, so per (shard, profile) the dispatched
//! member order is exactly ascending seq order. Combined with the
//! per-(shard, profile, epoch) stream layout
//! ([`EngineStreams::PerProfile`](crate::worker::EngineStreams)) and the
//! draw-order contract (a member's samples are a prefix-slice of its
//! profile's stream, independent of gang partitioning), a run is fully
//! reconstructed by [`replay_coalesced`](crate::replay_coalesced) from
//! the per-shard [`DispatchRecord`] lists — *including* runs where gangs
//! were stolen or rerouted, because the log records who actually served
//! what, in order.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::health::AbandonLog;
use crate::pool::{Completion, PoolError};
use crate::ring::{lock_recover, wait_recover, wait_timeout_recover, Ring};
use crate::worker::{Job, Member};

/// Tuning for the v2 coalescing pool
/// ([`PoolBuilder::coalesce`](crate::PoolBuilder::coalesce)).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoalesceConfig {
    /// Longest a staged submission waits for bucket-mates before the
    /// flusher dispatches a partial gang. `Duration::ZERO` disables
    /// staging entirely (every submission dispatches immediately as a
    /// one-member gang) while keeping the v2 per-profile stream layout —
    /// the "coalescing off" comparator the CI checksum diff runs.
    pub max_wait: Duration,
    /// Whether idle workers steal queued gangs from sibling shards.
    pub steal: bool,
}

impl Default for CoalesceConfig {
    fn default() -> Self {
        CoalesceConfig {
            max_wait: Duration::from_millis(1),
            steal: true,
        }
    }
}

impl CoalesceConfig {
    /// The "coalescing off" configuration: v2 stream layout and dispatch
    /// logging, no staging, no stealing. At `threads = 1` a passthrough
    /// run delivers bit-identical per-request samples to any coalesced
    /// run of the same trace — the equivalence the CI `coalesce-smoke`
    /// job diffs.
    pub fn passthrough() -> Self {
        CoalesceConfig {
            max_wait: Duration::ZERO,
            steal: false,
        }
    }
}

/// One serving decision, as recorded by the worker that made it: which
/// members (by seq, in serve order) were satisfied by one engine pass on
/// `shard`. The full per-shard record lists are the replay input that
/// reconstructs a coalesced run bit-exactly — gang boundaries do not
/// affect sample values (prefix property), so the record only has to pin
/// *which* shard served *whose* samples *in what order*.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DispatchRecord {
    /// The worker that served the gang.
    pub shard: usize,
    /// The shard whose ring the gang was queued on (`!= shard` exactly
    /// when the gang was stolen).
    pub home: usize,
    /// The gang's profile slot.
    pub profile_index: usize,
    /// Member seqs in serve (= ascending submission) order.
    pub members: Vec<u64>,
}

/// Per-shard append-only record of every gang served, across restart
/// epochs. The failure log's `fulfilled` member counts are cursors into
/// this sequence, which is how replay knows where each epoch's records
/// end.
#[derive(Debug, Default)]
pub(crate) struct DispatchLog {
    records: Mutex<Vec<DispatchRecord>>,
}

impl DispatchLog {
    pub(crate) fn append(&self, record: DispatchRecord) {
        lock_recover(&self.records).push(record);
    }

    pub(crate) fn snapshot(&self) -> Vec<DispatchRecord> {
        lock_recover(&self.records).clone()
    }
}

#[derive(Debug, Default)]
struct Bucket {
    members: Vec<Member>,
    total: usize,
}

#[derive(Debug)]
struct StageState {
    buckets: Vec<Bucket>,
    next_seq: u64,
    sealed: bool,
}

/// The staging layer: per-profile buckets behind one lock, an inline
/// flush on the submitter when a bucket covers a kernel batch, and a
/// deadline flusher thread for stragglers.
///
/// Backpressure: gang pushes to a full ring block *while holding the
/// stage lock*, which parks subsequent submitters on the lock — the same
/// head-of-line policy as v1's submit lane. Workers never take the stage
/// lock, so they always drain the rings out from under a blocked flush.
#[derive(Debug)]
pub(crate) struct Coalescer {
    state: Mutex<StageState>,
    /// Wakes the deadline flusher (new first member in a bucket, seal).
    flusher_cv: Condvar,
    /// Samples per full kernel batch (`64 * width.lanes()`).
    batch: usize,
    threads: usize,
    max_wait: Duration,
    rings: Vec<Arc<Ring<Job>>>,
    abandons: Vec<Arc<AbandonLog>>,
    gangs_flushed: AtomicU64,
    members_flushed: AtomicU64,
    /// Staging wait (submission to gang dispatch) in nanoseconds.
    #[cfg(feature = "metrics")]
    pub(crate) staging_wait: ctgauss_telemetry::Histogram,
}

impl Coalescer {
    pub(crate) fn new(
        cfg: &CoalesceConfig,
        batch: usize,
        rings: Vec<Arc<Ring<Job>>>,
        abandons: Vec<Arc<AbandonLog>>,
    ) -> Self {
        let threads = rings.len();
        Coalescer {
            state: Mutex::new(StageState {
                buckets: Vec::new(),
                next_seq: 0,
                sealed: false,
            }),
            flusher_cv: Condvar::new(),
            batch,
            threads,
            max_wait: cfg.max_wait,
            rings,
            abandons,
            gangs_flushed: AtomicU64::new(0),
            members_flushed: AtomicU64::new(0),
            #[cfg(feature = "metrics")]
            staging_wait: ctgauss_telemetry::Histogram::default(),
        }
    }

    /// Accepts one submission: assigns the next seq, stages the member,
    /// and flushes its profile's bucket inline if it now covers a full
    /// batch (a request of `count >= batch` therefore always dispatches
    /// immediately, carrying any smaller staged members with it, in seq
    /// order). Blocks on the stage lock and, when flushing into a full
    /// ring, on ring space.
    pub(crate) fn stage(
        &self,
        profile_index: usize,
        count: usize,
        submitted_at: Instant,
        completion: Arc<Completion>,
    ) -> Result<u64, PoolError> {
        let mut st = lock_recover(&self.state);
        if st.sealed {
            return Err(PoolError::ShuttingDown);
        }
        let seq = st.next_seq;
        st.next_seq += 1;
        if st.buckets.len() <= profile_index {
            st.buckets.resize_with(profile_index + 1, Bucket::default);
        }
        let bucket = &mut st.buckets[profile_index];
        bucket
            .members
            .push(Member::new(seq, count, submitted_at, completion));
        bucket.total += count;
        if bucket.total >= self.batch || self.max_wait.is_zero() {
            self.flush_bucket_locked(&mut st, profile_index);
        } else if bucket.members.len() == 1 {
            // First member arms the bucket's deadline.
            self.flusher_cv.notify_one();
        }
        Ok(seq)
    }

    /// Members currently staged (telemetry; racy by nature).
    pub(crate) fn staged_now(&self) -> u64 {
        lock_recover(&self.state)
            .buckets
            .iter()
            .map(|b| b.members.len() as u64)
            .sum()
    }

    pub(crate) fn gangs_flushed(&self) -> u64 {
        self.gangs_flushed.load(Ordering::Relaxed)
    }

    pub(crate) fn members_flushed(&self) -> u64 {
        self.members_flushed.load(Ordering::Relaxed)
    }

    /// Seals staging (new submissions fail with
    /// [`PoolError::ShuttingDown`]) and dispatches everything staged.
    /// Because sealing and the final flush happen under one stage-lock
    /// hold, no member can be staged after the seal: when this returns,
    /// the staging layer is empty forever. Call *before* closing the
    /// rings so the flushed gangs land on live workers.
    pub(crate) fn seal_and_flush(&self) {
        let mut st = lock_recover(&self.state);
        st.sealed = true;
        for profile in 0..st.buckets.len() {
            self.flush_bucket_locked(&mut st, profile);
        }
        self.flusher_cv.notify_all();
    }

    /// Drains one bucket into a gang and pushes it to the profile's home
    /// ring, rerouting to the next live ring if the home ring is closed
    /// (dead shard). If every ring is closed the members are abandoned —
    /// their tickets resolve with
    /// [`PoolError::WorkerGone`](crate::PoolError::WorkerGone).
    fn flush_bucket_locked(&self, st: &mut StageState, profile_index: usize) {
        let Some(bucket) = st.buckets.get_mut(profile_index) else {
            return;
        };
        if bucket.members.is_empty() {
            return;
        }
        let members = std::mem::take(&mut bucket.members);
        bucket.total = 0;
        #[cfg(feature = "metrics")]
        for member in &members {
            self.staging_wait
                .record_duration(member.submitted_at.elapsed());
        }
        self.gangs_flushed.fetch_add(1, Ordering::Relaxed);
        self.members_flushed
            .fetch_add(members.len() as u64, Ordering::Relaxed);
        let home = profile_index % self.threads;
        let mut gang = Job::gang(profile_index, home, members);
        for offset in 0..self.threads {
            let target = (home + offset) % self.threads;
            gang.retag(target, &self.abandons[target]);
            match self.rings[target].push(gang) {
                Ok(()) => return,
                Err(refused) => gang = refused,
            }
        }
        for member in gang.members.drain(..) {
            member.abandon();
        }
    }

    /// Spawns the deadline flusher: wakes when a bucket gains its first
    /// member and dispatches any bucket whose oldest member has waited
    /// `max_wait`. Exits once sealed.
    pub(crate) fn spawn_flusher(self: &Arc<Self>) -> JoinHandle<()> {
        let coalescer = Arc::clone(self);
        std::thread::Builder::new()
            .name("ctgauss-pool-flusher".into())
            .spawn(move || coalescer.flusher_loop())
            .expect("spawn coalesce flusher")
    }

    fn flusher_loop(&self) {
        let mut st = lock_recover(&self.state);
        loop {
            if st.sealed {
                return;
            }
            let now = Instant::now();
            let mut earliest: Option<Instant> = None;
            for profile in 0..st.buckets.len() {
                let Some(first) = st.buckets[profile].members.first() else {
                    continue;
                };
                let due = first.submitted_at + self.max_wait;
                if due <= now {
                    self.flush_bucket_locked(&mut st, profile);
                } else {
                    earliest = Some(earliest.map_or(due, |e| e.min(due)));
                }
            }
            st = match earliest {
                Some(due) => wait_timeout_recover(
                    &self.flusher_cv,
                    st,
                    due.saturating_duration_since(Instant::now()),
                ),
                None => wait_recover(&self.flusher_cv, st),
            };
        }
    }
}
