//! Deliberate failure: the fault-injection plan the chaos tooling arms.
//!
//! Every recovery path in this crate — supervised resurrection, epoch
//! streams, ticket deadlines, the `WorkerGone` degradation — is only
//! trustworthy if it can be *exercised*, deterministically, in tests and
//! in the `pool_server --chaos` harness. A [`FaultPlan`] makes each
//! failure reachable on demand:
//!
//! * **panic** a worker when its lifetime batch or request counter
//!   reaches N (the counters survive resurrection, so a fault fires at
//!   most once per plan);
//! * **stall** a worker at the same trigger points, for testing ticket
//!   deadlines and watchdogs without killing anything;
//! * **fail a kernel-cache load** (via
//!   [`ctgauss_core::inject_load_failures`]), exercising the
//!   cold-synthesis fallback.
//!
//! Plans are armed programmatically ([`PoolBuilder::faults`]) or parsed
//! from the [`CTGAUSS_FAULTS`](FAULTS_ENV) spec string, e.g.:
//!
//! ```text
//! CTGAUSS_FAULTS="panic@w0.batch3;stall@w1.req5:50ms;cacheload:2"
//! ```
//!
//! Batch/request triggers are counted against the worker's *lifetime*
//! counters (which are shared across restart epochs), so a plan's firing
//! points are a pure function of the request trace — the property that
//! lets chaos runs be replayed and audited.
//!
//! [`PoolBuilder::faults`]: crate::PoolBuilder::faults

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Environment variable a fault spec string is conventionally read from
/// (see [`FaultPlan::from_env`]). The library never reads it implicitly
/// — front ends like `pool_server --chaos` opt in.
pub const FAULTS_ENV: &str = "CTGAUSS_FAULTS";

/// Which per-worker counter triggers a fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultSite {
    /// Fires when the worker's lifetime kernel-batch counter reaches the
    /// trigger count (mid-request: the in-flight request is lost on a
    /// panic).
    Batch,
    /// Fires when the worker claims its Nth lifetime request, before any
    /// of its samples are drawn.
    Request,
}

/// What happens when a fault fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The worker thread panics — the supervised-death path.
    Panic,
    /// The worker sleeps for the given duration, then continues — the
    /// bounded-latency / watchdog path. Output streams are unaffected.
    Stall(Duration),
}

/// One armed fault against one worker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkerFault {
    /// Index of the worker (shard) this fault targets.
    pub worker: usize,
    /// 1-based lifetime count of the triggering counter.
    pub at: u64,
    /// Which counter triggers.
    pub site: FaultSite,
    /// Panic or stall.
    pub kind: FaultKind,
}

/// A malformed fault spec string, with the offending clause.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultSpecError {
    clause: String,
    reason: &'static str,
}

impl std::fmt::Display for FaultSpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "bad fault clause {:?}: {}", self.clause, self.reason)
    }
}

impl std::error::Error for FaultSpecError {}

fn clause_error(clause: &str, reason: &'static str) -> FaultSpecError {
    FaultSpecError {
        clause: clause.to_string(),
        reason,
    }
}

/// A set of faults to inject into one pool run.
///
/// # Examples
///
/// ```
/// use ctgauss_pool::{FaultKind, FaultPlan, FaultSite};
/// use std::time::Duration;
///
/// let plan = FaultPlan::parse("panic@w0.batch3;stall@w1.req5:50ms;cacheload:2").unwrap();
/// assert_eq!(plan.worker_faults().len(), 2);
/// assert_eq!(plan.worker_faults()[0].site, FaultSite::Batch);
/// assert_eq!(plan.worker_faults()[1].kind, FaultKind::Stall(Duration::from_millis(50)));
/// assert_eq!(plan.cache_load_failures(), 2);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    worker_faults: Vec<WorkerFault>,
    cache_load_failures: u64,
}

impl FaultPlan {
    /// An empty plan (injects nothing).
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Adds a worker panic at the worker's Nth lifetime batch.
    #[must_use]
    pub fn panic_at_batch(mut self, worker: usize, at: u64) -> Self {
        self.worker_faults.push(WorkerFault {
            worker,
            at,
            site: FaultSite::Batch,
            kind: FaultKind::Panic,
        });
        self
    }

    /// Adds a worker panic at the worker's Nth lifetime request.
    #[must_use]
    pub fn panic_at_request(mut self, worker: usize, at: u64) -> Self {
        self.worker_faults.push(WorkerFault {
            worker,
            at,
            site: FaultSite::Request,
            kind: FaultKind::Panic,
        });
        self
    }

    /// Adds a worker stall (sleep) at the worker's Nth lifetime batch.
    #[must_use]
    pub fn stall_at_batch(mut self, worker: usize, at: u64, stall: Duration) -> Self {
        self.worker_faults.push(WorkerFault {
            worker,
            at,
            site: FaultSite::Batch,
            kind: FaultKind::Stall(stall),
        });
        self
    }

    /// Adds a worker stall (sleep) at the worker's Nth lifetime request.
    #[must_use]
    pub fn stall_at_request(mut self, worker: usize, at: u64, stall: Duration) -> Self {
        self.worker_faults.push(WorkerFault {
            worker,
            at,
            site: FaultSite::Request,
            kind: FaultKind::Stall(stall),
        });
        self
    }

    /// Adds `n` kernel-cache load failures (armed thread-locally at
    /// [`arm_cache_load_failures`](Self::arm_cache_load_failures) time).
    #[must_use]
    pub fn fail_cache_loads(mut self, n: u64) -> Self {
        self.cache_load_failures += n;
        self
    }

    /// The armed per-worker faults.
    pub fn worker_faults(&self) -> &[WorkerFault] {
        &self.worker_faults
    }

    /// How many cache-load failures the plan will arm.
    pub fn cache_load_failures(&self) -> u64 {
        self.cache_load_failures
    }

    /// Whether the plan injects nothing at all.
    pub fn is_empty(&self) -> bool {
        self.worker_faults.is_empty() && self.cache_load_failures == 0
    }

    /// Arms the plan's cache-load failures on the **calling thread** (see
    /// [`ctgauss_core::inject_load_failures`]) — call before building the
    /// profiles whose loads should fail. Worker faults are armed
    /// separately, by handing the plan to
    /// [`PoolBuilder::faults`](crate::PoolBuilder::faults).
    pub fn arm_cache_load_failures(&self) {
        if self.cache_load_failures > 0 {
            ctgauss_core::inject_load_failures(self.cache_load_failures);
        }
    }

    /// Parses a spec string: `;`-separated clauses, each one of
    ///
    /// * `panic@w<W>.batch<N>` / `panic@w<W>.req<N>`
    /// * `stall@w<W>.batch<N>:<D>ms` / `stall@w<W>.req<N>:<D>ms`
    /// * `cacheload:<N>` (or bare `cacheload` for 1)
    ///
    /// Empty clauses are skipped, so trailing `;` is fine.
    ///
    /// # Errors
    ///
    /// [`FaultSpecError`] naming the malformed clause.
    pub fn parse(spec: &str) -> Result<Self, FaultSpecError> {
        let mut plan = FaultPlan::new();
        for clause in spec.split(';') {
            let clause = clause.trim();
            if clause.is_empty() {
                continue;
            }
            if let Some(rest) = clause.strip_prefix("cacheload") {
                let n = match rest.strip_prefix(':') {
                    None if rest.is_empty() => 1,
                    Some(n) => n
                        .parse()
                        .map_err(|_| clause_error(clause, "bad cacheload count"))?,
                    None => return Err(clause_error(clause, "expected `cacheload[:N]`")),
                };
                plan.cache_load_failures += n;
                continue;
            }
            let (kind_str, rest) = clause
                .split_once('@')
                .ok_or_else(|| clause_error(clause, "expected `kind@w<W>.<site><N>`"))?;
            let (target, stall) = match rest.split_once(':') {
                Some((target, stall_str)) => {
                    let ms_str = stall_str
                        .strip_suffix("ms")
                        .ok_or_else(|| clause_error(clause, "stall duration must end in `ms`"))?;
                    let ms: u64 = ms_str
                        .parse()
                        .map_err(|_| clause_error(clause, "bad stall duration"))?;
                    (target, Some(Duration::from_millis(ms)))
                }
                None => (rest, None),
            };
            let kind = match (kind_str, stall) {
                ("panic", None) => FaultKind::Panic,
                ("panic", Some(_)) => {
                    return Err(clause_error(clause, "panic takes no duration"));
                }
                ("stall", Some(d)) => FaultKind::Stall(d),
                ("stall", None) => {
                    return Err(clause_error(clause, "stall needs `:<D>ms`"));
                }
                _ => return Err(clause_error(clause, "unknown fault kind")),
            };
            let target = target
                .strip_prefix('w')
                .ok_or_else(|| clause_error(clause, "target must start with `w<W>`"))?;
            let (worker_str, site_at) = target
                .split_once('.')
                .ok_or_else(|| clause_error(clause, "expected `w<W>.<site><N>`"))?;
            let worker: usize = worker_str
                .parse()
                .map_err(|_| clause_error(clause, "bad worker index"))?;
            let (site, at_str) = if let Some(n) = site_at.strip_prefix("batch") {
                (FaultSite::Batch, n)
            } else if let Some(n) = site_at.strip_prefix("req") {
                (FaultSite::Request, n)
            } else {
                return Err(clause_error(clause, "site must be `batch<N>` or `req<N>`"));
            };
            let at: u64 = at_str
                .parse()
                .map_err(|_| clause_error(clause, "bad trigger count"))?;
            if at == 0 {
                return Err(clause_error(clause, "trigger count is 1-based"));
            }
            plan.worker_faults.push(WorkerFault {
                worker,
                at,
                site,
                kind,
            });
        }
        Ok(plan)
    }

    /// Reads and parses [`CTGAUSS_FAULTS`](FAULTS_ENV). `Ok(None)` when
    /// the variable is unset or empty.
    ///
    /// # Errors
    ///
    /// [`FaultSpecError`] for a set-but-malformed spec.
    pub fn from_env() -> Result<Option<Self>, FaultSpecError> {
        match std::env::var(FAULTS_ENV) {
            Ok(spec) if !spec.trim().is_empty() => Self::parse(&spec).map(Some),
            _ => Ok(None),
        }
    }

    /// Splits the plan into per-worker armed fault sets for a pool of
    /// `threads` workers. Faults targeting out-of-range workers are
    /// dropped (a plan written for 8 workers arms cleanly on 4).
    pub(crate) fn arm_workers(&self, threads: usize) -> Vec<Arc<ArmedFaults>> {
        (0..threads)
            .map(|w| {
                Arc::new(ArmedFaults {
                    faults: self
                        .worker_faults
                        .iter()
                        .filter(|f| f.worker == w)
                        .map(|&fault| ArmedFault {
                            fault,
                            fired: AtomicBool::new(false),
                        })
                        .collect(),
                })
            })
            .collect()
    }
}

/// One fault plus its fire-once latch.
#[derive(Debug)]
struct ArmedFault {
    fault: WorkerFault,
    fired: AtomicBool,
}

/// The faults armed against one worker, shared across its restart
/// epochs (so the fire-once latches and lifetime trigger counts survive
/// resurrection).
#[derive(Debug, Default)]
pub(crate) struct ArmedFaults {
    faults: Vec<ArmedFault>,
}

impl ArmedFaults {
    /// An empty set, for workers with no faults armed.
    pub(crate) fn none() -> Arc<Self> {
        Arc::new(ArmedFaults::default())
    }

    /// Checks the worker's lifetime counter `count` against site `site`;
    /// fires (at most once each) every armed fault whose trigger has been
    /// reached. Panics for [`FaultKind::Panic`], sleeps for
    /// [`FaultKind::Stall`].
    pub(crate) fn check(&self, site: FaultSite, count: u64) {
        for armed in &self.faults {
            if armed.fault.site != site || count < armed.fault.at {
                continue;
            }
            if armed.fired.swap(true, Ordering::Relaxed) {
                continue;
            }
            match armed.fault.kind {
                FaultKind::Stall(d) => std::thread::sleep(d),
                FaultKind::Panic => panic!(
                    "injected fault: worker {} panic at {} {}",
                    armed.fault.worker,
                    match armed.fault.site {
                        FaultSite::Batch => "batch",
                        FaultSite::Request => "request",
                    },
                    armed.fault.at,
                ),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_full_grammar() {
        let plan =
            FaultPlan::parse("panic@w0.batch3; stall@w1.req5:50ms;cacheload:2;;panic@w2.req1;")
                .unwrap();
        assert_eq!(
            plan.worker_faults(),
            &[
                WorkerFault {
                    worker: 0,
                    at: 3,
                    site: FaultSite::Batch,
                    kind: FaultKind::Panic,
                },
                WorkerFault {
                    worker: 1,
                    at: 5,
                    site: FaultSite::Request,
                    kind: FaultKind::Stall(Duration::from_millis(50)),
                },
                WorkerFault {
                    worker: 2,
                    at: 1,
                    site: FaultSite::Request,
                    kind: FaultKind::Panic,
                },
            ]
        );
        assert_eq!(plan.cache_load_failures(), 2);
        assert_eq!(
            FaultPlan::parse("cacheload").unwrap().cache_load_failures(),
            1
        );
        assert!(FaultPlan::parse("").unwrap().is_empty());
    }

    #[test]
    fn builder_methods_match_parsed_clauses() {
        let built = FaultPlan::new()
            .panic_at_batch(0, 3)
            .stall_at_request(1, 5, Duration::from_millis(50))
            .panic_at_request(2, 1)
            .stall_at_batch(3, 7, Duration::from_millis(9))
            .fail_cache_loads(2);
        let parsed = FaultPlan::parse(
            "panic@w0.batch3;stall@w1.req5:50ms;panic@w2.req1;stall@w3.batch7:9ms;cacheload:2",
        )
        .unwrap();
        assert_eq!(built, parsed);
    }

    #[test]
    fn rejects_malformed_clauses() {
        for bad in [
            "panic@w0.batch0",     // 1-based
            "panic@w0.batch",      // missing count
            "panic@0.batch3",      // missing `w`
            "panic@w0.tick3",      // unknown site
            "panic@w0.batch3:5ms", // panic with duration
            "stall@w0.batch3",     // stall without duration
            "stall@w0.batch3:5s",  // wrong unit
            "explode@w0.batch3",   // unknown kind
            "cacheload:x",
            "nonsense",
        ] {
            assert!(FaultPlan::parse(bad).is_err(), "{bad:?} must be rejected");
        }
    }

    #[test]
    fn armed_faults_fire_once_at_or_after_the_trigger() {
        let plan = FaultPlan::new().stall_at_batch(0, 3, Duration::from_millis(1));
        let armed = plan.arm_workers(2);
        // Worker 1 has nothing armed.
        armed[1].check(FaultSite::Batch, 3);
        // Before the trigger: nothing. At it: fires (sleeps). After: spent.
        armed[0].check(FaultSite::Batch, 2);
        armed[0].check(FaultSite::Request, 3); // wrong site
        let start = std::time::Instant::now();
        armed[0].check(FaultSite::Batch, 3);
        assert!(start.elapsed() >= Duration::from_millis(1));
        let start = std::time::Instant::now();
        armed[0].check(FaultSite::Batch, 4);
        assert!(start.elapsed() < Duration::from_millis(1));
    }

    #[test]
    fn out_of_range_worker_faults_are_dropped_on_arming() {
        let plan = FaultPlan::new().panic_at_batch(7, 1);
        let armed = plan.arm_workers(2);
        armed[0].check(FaultSite::Batch, 100);
        armed[1].check(FaultSite::Batch, 100); // must not panic
    }
}
