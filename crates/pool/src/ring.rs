//! A bounded MPMC ring: the per-shard request queue.

use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

use std::collections::VecDeque;

/// Locks a mutex, recovering the guard from a poisoned lock.
///
/// Every mutex in this crate guards plain data whose invariants hold
/// between operations (a queue, a one-shot result slot) — a panic in
/// *one* accessor never leaves the data half-updated in a way the next
/// accessor cannot tolerate. Propagating poison instead would turn one
/// panicking waiter into a cascade: its poisoned mutex panics every
/// unrelated waiter and worker that touches the lock next. Containment
/// is the whole point of the supervised pool, so poison is explicitly
/// swallowed here.
pub(crate) fn lock_recover<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// [`Condvar::wait`] with the same poison recovery as [`lock_recover`].
pub(crate) fn wait_recover<'a, T>(cv: &Condvar, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
    cv.wait(guard).unwrap_or_else(PoisonError::into_inner)
}

/// [`Condvar::wait_timeout`] with the same poison recovery.
pub(crate) fn wait_timeout_recover<'a, T>(
    cv: &Condvar,
    guard: MutexGuard<'a, T>,
    timeout: Duration,
) -> MutexGuard<'a, T> {
    cv.wait_timeout(guard, timeout)
        .unwrap_or_else(PoisonError::into_inner)
        .0
}

/// A bounded multi-producer multi-consumer FIFO with blocking push/pop
/// and a close signal.
///
/// Built on `Mutex<VecDeque>` plus two condition variables — the
/// workspace carries no external concurrency crates, and the queue sits
/// in front of a kernel that takes microseconds per batch, so lock-free
/// cleverness would be noise. The *bounded* part is the point: a full
/// ring blocks producers, which is the pool's backpressure.
#[derive(Debug)]
pub(crate) struct Ring<T> {
    state: Mutex<RingState<T>>,
    not_full: Condvar,
    not_empty: Condvar,
    capacity: usize,
}

#[derive(Debug)]
struct RingState<T> {
    queue: VecDeque<T>,
    closed: bool,
}

/// Why a non-blocking push was refused.
#[derive(Debug, PartialEq, Eq)]
pub(crate) enum TryPushError<T> {
    /// The ring is at capacity; retry or block.
    Full(T),
    /// The ring is closed; the item can never be accepted.
    Closed(T),
}

/// Why a timed push was refused.
#[derive(Debug, PartialEq, Eq)]
pub(crate) enum PushTimeoutError<T> {
    /// The ring stayed full past the deadline; the item is handed back.
    TimedOut(T),
    /// The ring is closed; the item can never be accepted.
    Closed(T),
}

/// Outcome of a timed consumer wait ([`Ring::pop_many_timeout`]).
#[derive(Debug, PartialEq, Eq)]
pub(crate) enum PopWait {
    /// At least one item was moved into `out`.
    Items,
    /// The ring stayed empty past the deadline (steal-scan window).
    TimedOut,
    /// The ring is closed and drained; end of stream.
    Closed,
}

impl<T> Ring<T> {
    pub(crate) fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "ring capacity must be positive");
        Ring {
            state: Mutex::new(RingState {
                queue: VecDeque::with_capacity(capacity),
                closed: false,
            }),
            not_full: Condvar::new(),
            not_empty: Condvar::new(),
            capacity,
        }
    }

    /// Blocks until there is room, then enqueues. Returns the item back
    /// if the ring closed while (or before) waiting.
    pub(crate) fn push(&self, item: T) -> Result<(), T> {
        let mut state = lock_recover(&self.state);
        while state.queue.len() == self.capacity && !state.closed {
            state = wait_recover(&self.not_full, state);
        }
        if state.closed {
            return Err(item);
        }
        state.queue.push_back(item);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Enqueues without blocking.
    pub(crate) fn try_push(&self, item: T) -> Result<(), TryPushError<T>> {
        let mut state = lock_recover(&self.state);
        if state.closed {
            return Err(TryPushError::Closed(item));
        }
        if state.queue.len() == self.capacity {
            return Err(TryPushError::Full(item));
        }
        state.queue.push_back(item);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Blocks until there is room or `timeout` elapses, then enqueues.
    /// The deadline bounds only the full-ring wait — a closed ring
    /// returns immediately whatever the deadline.
    pub(crate) fn push_timeout(
        &self,
        item: T,
        timeout: Duration,
    ) -> Result<(), PushTimeoutError<T>> {
        let deadline = Instant::now() + timeout;
        let mut state = lock_recover(&self.state);
        while state.queue.len() == self.capacity && !state.closed {
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                return Err(PushTimeoutError::TimedOut(item));
            }
            state = wait_timeout_recover(&self.not_full, state, remaining);
        }
        if state.closed {
            return Err(PushTimeoutError::Closed(item));
        }
        state.queue.push_back(item);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Blocks until at least one item is available, then moves up to
    /// `max` items into `out` (in FIFO order) — the consumer-side
    /// batching hook. Returns `false` once the ring is closed *and*
    /// drained, with `out` left empty.
    pub(crate) fn pop_many(&self, max: usize, out: &mut Vec<T>) -> bool {
        debug_assert!(out.is_empty() && max > 0);
        let mut state = lock_recover(&self.state);
        while state.queue.is_empty() {
            if state.closed {
                return false;
            }
            state = wait_recover(&self.not_empty, state);
        }
        let take = state.queue.len().min(max);
        out.extend(state.queue.drain(..take));
        self.not_full.notify_all();
        true
    }

    /// Like [`Ring::pop_many`], but bounds the empty-ring wait: a worker
    /// in stealing mode polls its own ring with a short deadline and
    /// scans sibling rings on [`PopWait::TimedOut`] instead of parking
    /// forever. A closed-and-drained ring still reports
    /// [`PopWait::Closed`] immediately, whatever the deadline.
    pub(crate) fn pop_many_timeout(
        &self,
        max: usize,
        out: &mut Vec<T>,
        timeout: Duration,
    ) -> PopWait {
        debug_assert!(out.is_empty() && max > 0);
        let deadline = Instant::now() + timeout;
        let mut state = lock_recover(&self.state);
        while state.queue.is_empty() {
            if state.closed {
                return PopWait::Closed;
            }
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                return PopWait::TimedOut;
            }
            state = wait_timeout_recover(&self.not_empty, state, remaining);
        }
        let take = state.queue.len().min(max);
        out.extend(state.queue.drain(..take));
        self.not_full.notify_all();
        PopWait::Items
    }

    /// Non-blocking front pop for work stealing: hands the *oldest*
    /// queued item to a sibling worker. Unlike [`Ring::pop_many`] this
    /// drains a closed-but-nonempty ring too — a thief may rescue work
    /// queued ahead of a shard that is sitting out a restart backoff.
    pub(crate) fn steal_one(&self) -> Option<T> {
        let mut state = lock_recover(&self.state);
        let item = state.queue.pop_front();
        if item.is_some() {
            self.not_full.notify_all();
        }
        item
    }

    /// Closes the ring: producers fail fast, consumers drain what is
    /// left and then see end-of-stream.
    pub(crate) fn close(&self) {
        let mut state = lock_recover(&self.state);
        state.closed = true;
        self.not_full.notify_all();
        self.not_empty.notify_all();
    }

    /// Closes the ring *and drops everything still queued* — for a dying
    /// consumer. Queued work fails fast (each dropped item can signal its
    /// waiter) instead of sitting in front of a consumer that will never
    /// return, and blocked producers wake into the closed-ring error.
    pub(crate) fn close_and_purge(&self) {
        let mut state = lock_recover(&self.state);
        state.closed = true;
        state.queue.clear();
        self.not_full.notify_all();
        self.not_empty.notify_all();
    }

    /// Whether the ring has been closed (by shutdown or a dead worker's
    /// budget exhaustion).
    #[cfg(test)]
    pub(crate) fn is_closed(&self) -> bool {
        lock_recover(&self.state).closed
    }

    /// Current queue depth (for stats; racy by nature).
    pub(crate) fn len(&self) -> usize {
        lock_recover(&self.state).queue.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn fifo_order_preserved() {
        let ring = Ring::new(8);
        for i in 0..5 {
            ring.push(i).unwrap();
        }
        let mut out = Vec::new();
        assert!(ring.pop_many(3, &mut out));
        assert_eq!(out, [0, 1, 2]);
        out.clear();
        assert!(ring.pop_many(10, &mut out));
        assert_eq!(out, [3, 4]);
    }

    #[test]
    fn try_push_reports_full_then_closed() {
        let ring = Ring::new(1);
        ring.try_push(1).unwrap();
        assert_eq!(ring.try_push(2), Err(TryPushError::Full(2)));
        ring.close();
        assert_eq!(ring.try_push(3), Err(TryPushError::Closed(3)));
    }

    #[test]
    fn close_drains_then_ends() {
        let ring = Ring::new(4);
        ring.push(7).unwrap();
        ring.close();
        assert!(ring.push(8).is_err());
        let mut out = Vec::new();
        assert!(ring.pop_many(4, &mut out));
        assert_eq!(out, [7]);
        out.clear();
        assert!(!ring.pop_many(4, &mut out));
    }

    #[test]
    fn close_and_purge_drops_queued_items_and_rejects_producers() {
        #[derive(Debug)]
        struct NoteDrop(Arc<AtomicUsize>);
        impl Drop for NoteDrop {
            fn drop(&mut self) {
                self.0.fetch_add(1, Ordering::SeqCst);
            }
        }
        let drops = Arc::new(AtomicUsize::new(0));
        let ring = Ring::new(4);
        ring.push(NoteDrop(Arc::clone(&drops))).unwrap();
        ring.push(NoteDrop(Arc::clone(&drops))).unwrap();
        ring.close_and_purge();
        assert_eq!(drops.load(Ordering::SeqCst), 2);
        assert!(ring.push(NoteDrop(Arc::clone(&drops))).is_err());
        let mut out = Vec::new();
        assert!(!ring.pop_many(4, &mut out));
    }

    #[test]
    fn full_ring_blocks_until_consumed() {
        let ring = Arc::new(Ring::new(1));
        ring.push(0u32).unwrap();
        let producer = {
            let ring = Arc::clone(&ring);
            std::thread::spawn(move || ring.push(1).is_ok())
        };
        // Give the producer a moment to block on the full ring.
        std::thread::sleep(Duration::from_millis(20));
        let mut out = Vec::new();
        assert!(ring.pop_many(1, &mut out));
        assert_eq!(out, [0]);
        assert!(producer.join().unwrap());
        out.clear();
        assert!(ring.pop_many(1, &mut out));
        assert_eq!(out, [1]);
    }

    #[test]
    fn push_timeout_expires_on_a_full_ring_and_hands_the_item_back() {
        let ring = Ring::new(1);
        ring.push(1u32).unwrap();
        let start = Instant::now();
        assert_eq!(
            ring.push_timeout(2, Duration::from_millis(30)),
            Err(PushTimeoutError::TimedOut(2)),
        );
        assert!(
            start.elapsed() >= Duration::from_millis(30),
            "timed push returned before the deadline"
        );
        // After the consumer makes room, the same item goes through.
        let mut out = Vec::new();
        assert!(ring.pop_many(1, &mut out));
        assert_eq!(ring.push_timeout(2, Duration::from_millis(30)), Ok(()));
    }

    #[test]
    fn push_timeout_succeeds_when_room_appears_within_the_deadline() {
        let ring = Arc::new(Ring::new(1));
        ring.push(0u32).unwrap();
        let consumer = {
            let ring = Arc::clone(&ring);
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(20));
                let mut out = Vec::new();
                ring.pop_many(1, &mut out);
                out
            })
        };
        assert_eq!(ring.push_timeout(1, Duration::from_secs(5)), Ok(()));
        assert_eq!(consumer.join().unwrap(), [0]);
    }

    #[test]
    fn push_timeout_reports_closed_immediately() {
        let ring = Ring::new(1);
        ring.push(1u32).unwrap(); // full, so the wait path is armed...
        ring.close();
        let start = Instant::now();
        assert_eq!(
            ring.push_timeout(2, Duration::from_secs(60)),
            Err(PushTimeoutError::Closed(2)),
        );
        assert!(
            start.elapsed() < Duration::from_secs(5),
            "closed ring must not consume the deadline"
        );
    }

    /// A consumer parked in `pop_many` while the producer side
    /// `close_and_purge`s: the consumer must wake into end-of-stream,
    /// never hang, and never observe purged items.
    #[test]
    fn pop_many_racing_close_and_purge_sees_end_of_stream() {
        for _ in 0..50 {
            let ring = Arc::new(Ring::new(8));
            let consumer = {
                let ring = Arc::clone(&ring);
                std::thread::spawn(move || {
                    let mut out = Vec::new();
                    let mut seen = Vec::new();
                    while ring.pop_many(4, &mut out) {
                        seen.append(&mut out);
                    }
                    seen
                })
            };
            // Race the purge against the consumer's first pops.
            ring.push(1u32).unwrap();
            ring.push(2).unwrap();
            ring.close_and_purge();
            let seen = consumer.join().unwrap();
            // The consumer saw a (possibly empty) prefix, in order, and
            // then end-of-stream — purged items are dropped, not popped.
            assert!(
                seen == [] as [u32; 0] || seen == [1] || seen == [1, 2],
                "unexpected consumer view: {seen:?}"
            );
            assert!(ring.is_closed());
        }
    }

    /// Several producers parked on a full ring all wake into the closed
    /// error on `close` — none may stay parked forever (the wakeup must
    /// be a broadcast, not a single notify).
    #[test]
    fn every_blocked_producer_wakes_on_close() {
        let ring = Arc::new(Ring::new(1));
        ring.push(0u32).unwrap();
        let producers: Vec<_> = (1..=4u32)
            .map(|i| {
                let ring = Arc::clone(&ring);
                std::thread::spawn(move || ring.push(i))
            })
            .collect();
        // Let all four park on the full ring, then close.
        std::thread::sleep(Duration::from_millis(30));
        ring.close();
        for p in producers {
            let result = p.join().expect("producer must wake, not hang");
            assert!(result.is_err(), "closed ring must refuse the item");
        }
    }

    #[test]
    fn pop_many_timeout_times_out_pops_and_reports_close() {
        let ring = Ring::new(4);
        let mut out = Vec::new();
        let start = Instant::now();
        assert_eq!(
            ring.pop_many_timeout(4, &mut out, Duration::from_millis(20)),
            PopWait::TimedOut
        );
        assert!(start.elapsed() >= Duration::from_millis(20));
        ring.push(9u32).unwrap();
        assert_eq!(
            ring.pop_many_timeout(4, &mut out, Duration::from_secs(5)),
            PopWait::Items
        );
        assert_eq!(out, [9]);
        out.clear();
        ring.close();
        let start = Instant::now();
        assert_eq!(
            ring.pop_many_timeout(4, &mut out, Duration::from_secs(60)),
            PopWait::Closed
        );
        assert!(start.elapsed() < Duration::from_secs(5));
    }

    #[test]
    fn steal_one_takes_the_oldest_even_from_a_closed_ring() {
        let ring = Ring::new(4);
        ring.push(1u32).unwrap();
        ring.push(2).unwrap();
        assert_eq!(ring.steal_one(), Some(1));
        ring.close();
        assert_eq!(ring.steal_one(), Some(2), "closed-but-nonempty drains");
        assert_eq!(ring.steal_one(), None);
    }

    #[test]
    fn steal_one_wakes_a_blocked_producer() {
        let ring = Arc::new(Ring::new(1));
        ring.push(0u32).unwrap();
        let producer = {
            let ring = Arc::clone(&ring);
            std::thread::spawn(move || ring.push(1).is_ok())
        };
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(ring.steal_one(), Some(0));
        assert!(producer.join().unwrap());
    }

    /// A panic while holding the ring lock poisons the mutex; every ring
    /// operation must keep working afterwards (poison containment, the
    /// anti-cascade property).
    #[test]
    fn poisoned_ring_keeps_serving() {
        let ring = Arc::new(Ring::new(4));
        ring.push(1u32).unwrap();
        let poison = catch_unwind(AssertUnwindSafe(|| {
            let _guard = ring.state.lock().unwrap();
            panic!("poison the ring lock");
        }));
        assert!(poison.is_err());
        assert!(ring.state.is_poisoned(), "test must actually poison");
        // All paths recover: push, try_push, timed push, pop, close.
        ring.push(2).unwrap();
        ring.try_push(3).unwrap();
        ring.push_timeout(4, Duration::from_millis(5)).unwrap();
        assert_eq!(ring.len(), 4);
        let mut out = Vec::new();
        assert!(ring.pop_many(8, &mut out));
        assert_eq!(out, [1, 2, 3, 4]);
        ring.close();
        assert!(ring.push(5).is_err());
    }
}
