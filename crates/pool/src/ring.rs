//! A bounded MPMC ring: the per-shard request queue.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// A bounded multi-producer multi-consumer FIFO with blocking push/pop
/// and a close signal.
///
/// Built on `Mutex<VecDeque>` plus two condition variables — the
/// workspace carries no external concurrency crates, and the queue sits
/// in front of a kernel that takes microseconds per batch, so lock-free
/// cleverness would be noise. The *bounded* part is the point: a full
/// ring blocks producers, which is the pool's backpressure.
#[derive(Debug)]
pub(crate) struct Ring<T> {
    state: Mutex<RingState<T>>,
    not_full: Condvar,
    not_empty: Condvar,
    capacity: usize,
}

#[derive(Debug)]
struct RingState<T> {
    queue: VecDeque<T>,
    closed: bool,
}

/// Why a non-blocking push was refused.
#[derive(Debug, PartialEq, Eq)]
pub(crate) enum TryPushError<T> {
    /// The ring is at capacity; retry or block.
    Full(T),
    /// The ring is closed; the item can never be accepted.
    Closed(T),
}

impl<T> Ring<T> {
    pub(crate) fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "ring capacity must be positive");
        Ring {
            state: Mutex::new(RingState {
                queue: VecDeque::with_capacity(capacity),
                closed: false,
            }),
            not_full: Condvar::new(),
            not_empty: Condvar::new(),
            capacity,
        }
    }

    /// Blocks until there is room, then enqueues. Returns the item back
    /// if the ring closed while (or before) waiting.
    pub(crate) fn push(&self, item: T) -> Result<(), T> {
        let mut state = self.state.lock().expect("ring lock");
        while state.queue.len() == self.capacity && !state.closed {
            state = self.not_full.wait(state).expect("ring lock");
        }
        if state.closed {
            return Err(item);
        }
        state.queue.push_back(item);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Enqueues without blocking.
    pub(crate) fn try_push(&self, item: T) -> Result<(), TryPushError<T>> {
        let mut state = self.state.lock().expect("ring lock");
        if state.closed {
            return Err(TryPushError::Closed(item));
        }
        if state.queue.len() == self.capacity {
            return Err(TryPushError::Full(item));
        }
        state.queue.push_back(item);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Blocks until at least one item is available, then moves up to
    /// `max` items into `out` (in FIFO order) — the consumer-side
    /// batching hook. Returns `false` once the ring is closed *and*
    /// drained, with `out` left empty.
    pub(crate) fn pop_many(&self, max: usize, out: &mut Vec<T>) -> bool {
        debug_assert!(out.is_empty() && max > 0);
        let mut state = self.state.lock().expect("ring lock");
        while state.queue.is_empty() {
            if state.closed {
                return false;
            }
            state = self.not_empty.wait(state).expect("ring lock");
        }
        let take = state.queue.len().min(max);
        out.extend(state.queue.drain(..take));
        self.not_full.notify_all();
        true
    }

    /// Closes the ring: producers fail fast, consumers drain what is
    /// left and then see end-of-stream.
    pub(crate) fn close(&self) {
        let mut state = self.state.lock().expect("ring lock");
        state.closed = true;
        self.not_full.notify_all();
        self.not_empty.notify_all();
    }

    /// Closes the ring *and drops everything still queued* — for a dying
    /// consumer. Queued work fails fast (each dropped item can signal its
    /// waiter) instead of sitting in front of a consumer that will never
    /// return, and blocked producers wake into the closed-ring error.
    pub(crate) fn close_and_purge(&self) {
        let mut state = self.state.lock().expect("ring lock");
        state.closed = true;
        state.queue.clear();
        self.not_full.notify_all();
        self.not_empty.notify_all();
    }

    /// Current queue depth (for stats; racy by nature).
    pub(crate) fn len(&self) -> usize {
        self.state.lock().expect("ring lock").queue.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_order_preserved() {
        let ring = Ring::new(8);
        for i in 0..5 {
            ring.push(i).unwrap();
        }
        let mut out = Vec::new();
        assert!(ring.pop_many(3, &mut out));
        assert_eq!(out, [0, 1, 2]);
        out.clear();
        assert!(ring.pop_many(10, &mut out));
        assert_eq!(out, [3, 4]);
    }

    #[test]
    fn try_push_reports_full_then_closed() {
        let ring = Ring::new(1);
        ring.try_push(1).unwrap();
        assert_eq!(ring.try_push(2), Err(TryPushError::Full(2)));
        ring.close();
        assert_eq!(ring.try_push(3), Err(TryPushError::Closed(3)));
    }

    #[test]
    fn close_drains_then_ends() {
        let ring = Ring::new(4);
        ring.push(7).unwrap();
        ring.close();
        assert!(ring.push(8).is_err());
        let mut out = Vec::new();
        assert!(ring.pop_many(4, &mut out));
        assert_eq!(out, [7]);
        out.clear();
        assert!(!ring.pop_many(4, &mut out));
    }

    #[test]
    fn close_and_purge_drops_queued_items_and_rejects_producers() {
        #[derive(Debug)]
        struct NoteDrop(Arc<std::sync::atomic::AtomicUsize>);
        impl Drop for NoteDrop {
            fn drop(&mut self) {
                self.0.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
            }
        }
        let drops = Arc::new(std::sync::atomic::AtomicUsize::new(0));
        let ring = Ring::new(4);
        ring.push(NoteDrop(Arc::clone(&drops))).unwrap();
        ring.push(NoteDrop(Arc::clone(&drops))).unwrap();
        ring.close_and_purge();
        assert_eq!(drops.load(std::sync::atomic::Ordering::SeqCst), 2);
        assert!(ring.push(NoteDrop(Arc::clone(&drops))).is_err());
        let mut out = Vec::new();
        assert!(!ring.pop_many(4, &mut out));
    }

    #[test]
    fn full_ring_blocks_until_consumed() {
        let ring = Arc::new(Ring::new(1));
        ring.push(0u32).unwrap();
        let producer = {
            let ring = Arc::clone(&ring);
            std::thread::spawn(move || ring.push(1).is_ok())
        };
        // Give the producer a moment to block on the full ring.
        std::thread::sleep(std::time::Duration::from_millis(20));
        let mut out = Vec::new();
        assert!(ring.pop_many(1, &mut out));
        assert_eq!(out, [0]);
        assert!(producer.join().unwrap());
        out.clear();
        assert!(ring.pop_many(1, &mut out));
        assert_eq!(out, [1]);
    }
}
