//! The hot-load profile registry: the pool's runtime table of sampler
//! profiles.
//!
//! v1 froze the profile set at [`PoolBuilder::spawn`] time into an
//! `Arc<[Arc<CtSampler>]>`; the registry replaces that slice with an
//! append-only table that can **add** profiles while the pool is serving
//! (hot-loading prebuilt [`KernelArtifact`]s through the
//! content-addressed `KernelCache`, with transparent fallback to
//! in-process synthesis when an artifact is missing or corrupted) and
//! **retire** them without restart.
//!
//! Invariants the rest of the pool leans on:
//!
//! * **Index stability.** Slots are never removed or reordered, so a
//!   [`ProfileId`] minted at registration keeps meaning the same
//!   distribution forever — retirement tombstones the slot, it does not
//!   free the index. This is what keeps replay of old traces and
//!   in-flight requests well-defined across registry churn.
//! * **Retire is submission-side only.** A retired slot keeps its
//!   sampler `Arc`: requests already accepted (staged, queued, or being
//!   served) complete normally; only *new* submissions observe
//!   [`PoolError::UnknownProfile`]. Replay likewise resolves retired
//!   profiles.
//!
//! [`PoolBuilder::spawn`]: crate::PoolBuilder::spawn
//! [`ProfileId`]: crate::ProfileId
//! [`PoolError::UnknownProfile`]: crate::PoolError
//! [`KernelArtifact`]: ctgauss_core::KernelArtifact

use std::sync::Arc;

use ctgauss_core::CtSampler;

use crate::ring::lock_recover;
use std::sync::Mutex;

/// One registry slot: the sampler plus the display metadata surfaced
/// through the RPC front end and telemetry.
#[derive(Debug)]
struct Slot {
    sampler: Arc<CtSampler>,
    label: String,
    precision: u32,
    retired: bool,
}

/// A point-in-time description of one registered profile, as surfaced by
/// [`Pool::profiles`](crate::Pool::profiles) and the RPC `profiles`
/// endpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProfileInfo {
    /// The slot index (equals `ProfileId::index`).
    pub index: usize,
    /// Human-readable distribution label (the sigma string for profiles
    /// registered from a [`SamplerSpec`](ctgauss_core::SamplerSpec)).
    pub label: String,
    /// Probability-matrix precision in bits (0 when unknown — profiles
    /// registered from a bare sampler handle).
    pub precision: u32,
    /// Whether the slot is tombstoned for new submissions.
    pub retired: bool,
}

/// The append-only, retire-tombstoning profile table shared by the
/// submit path, every worker, and the supervisor's respawn path.
#[derive(Debug, Default)]
pub(crate) struct ProfileRegistry {
    slots: Mutex<Vec<Slot>>,
}

impl ProfileRegistry {
    pub(crate) fn new() -> Self {
        ProfileRegistry::default()
    }

    /// Appends a slot and returns its (stable) index.
    pub(crate) fn add(&self, sampler: Arc<CtSampler>, label: String, precision: u32) -> usize {
        let mut slots = lock_recover(&self.slots);
        slots.push(Slot {
            sampler,
            label,
            precision,
            retired: false,
        });
        slots.len() - 1
    }

    /// The sampler in slot `index`, retired or not — the worker/replay
    /// resolution path (in-flight work on a retired profile completes).
    pub(crate) fn sampler(&self, index: usize) -> Option<Arc<CtSampler>> {
        lock_recover(&self.slots)
            .get(index)
            .map(|s| Arc::clone(&s.sampler))
    }

    /// The sampler in slot `index` if the slot is live — the submission
    /// gate (`None` for out-of-range *and* retired slots).
    pub(crate) fn active_sampler(&self, index: usize) -> Option<Arc<CtSampler>> {
        lock_recover(&self.slots)
            .get(index)
            .filter(|s| !s.retired)
            .map(|s| Arc::clone(&s.sampler))
    }

    /// Tombstones slot `index`. `false` if the index was never
    /// registered (already-retired slots return `true`: idempotent).
    pub(crate) fn retire(&self, index: usize) -> bool {
        let mut slots = lock_recover(&self.slots);
        match slots.get_mut(index) {
            Some(slot) => {
                slot.retired = true;
                true
            }
            None => false,
        }
    }

    /// `(active, retired)` slot counts, for telemetry.
    pub(crate) fn counts(&self) -> (u64, u64) {
        let slots = lock_recover(&self.slots);
        let retired = slots.iter().filter(|s| s.retired).count() as u64;
        (slots.len() as u64 - retired, retired)
    }

    /// A snapshot of every slot's metadata, in index order.
    pub(crate) fn snapshot(&self) -> Vec<ProfileInfo> {
        lock_recover(&self.slots)
            .iter()
            .enumerate()
            .map(|(index, s)| ProfileInfo {
                index,
                label: s.label.clone(),
                precision: s.precision,
                retired: s.retired,
            })
            .collect()
    }
}

/// Where a [`ShardEngine`](crate::worker::ShardEngine) resolves profile
/// indices: the live registry (workers — sees hot-loaded additions), or
/// a frozen slice (replay — the verifier's locally built profile list).
#[derive(Debug, Clone)]
pub(crate) enum ProfileSource {
    /// Frozen list, e.g. an offline replay's locally built samplers.
    Static(Arc<[Arc<CtSampler>]>),
    /// The pool's live registry (retired slots still resolve).
    Registry(Arc<ProfileRegistry>),
}

impl ProfileSource {
    pub(crate) fn sampler(&self, index: usize) -> Option<Arc<CtSampler>> {
        match self {
            ProfileSource::Static(list) => list.get(index).map(Arc::clone),
            ProfileSource::Registry(reg) => reg.sampler(index),
        }
    }
}
