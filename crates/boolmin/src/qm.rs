//! Exact two-level minimization: Quine-McCluskey prime generation with an
//! essential-prime pass and a branch-and-bound Petrick cover — the open
//! equivalent of the `espresso -Dso -S1` invocation the paper uses on each
//! sublist function.

use std::collections::HashSet;

use crate::{Cover, Cube, VarState};

/// Maximum variable count accepted by [`minimize_exact`].
///
/// Prime generation enumerates minterms, so the exact path is reserved for
/// small functions — which is the entire point of the paper's sublist
/// split: each `f^{iota,kappa}_Delta` has only `Delta` variables.
pub const MAX_EXACT_VARS: u32 = 14;

/// A single-output truth table with don't-cares over `nvars <= 14`
/// variables, minterms indexed by the little-endian integer of the
/// assignment (`bit i` of the index = variable `i`).
///
/// # Examples
///
/// ```
/// use ctgauss_boolmin::TruthTable;
///
/// let mut tt = TruthTable::new(3);
/// tt.set_on(0b000);
/// tt.set_dc(0b111);
/// assert!(tt.is_on(0));
/// assert!(tt.is_dc(7));
/// assert!(!tt.is_on(3));
/// ```
#[derive(Debug, Clone)]
pub struct TruthTable {
    nvars: u32,
    on: Vec<bool>,
    dc: Vec<bool>,
}

impl TruthTable {
    /// An all-false table.
    ///
    /// # Panics
    ///
    /// Panics if `nvars` exceeds [`MAX_EXACT_VARS`].
    pub fn new(nvars: u32) -> Self {
        assert!(
            nvars <= MAX_EXACT_VARS,
            "exact minimization limited to {MAX_EXACT_VARS} variables, got {nvars}"
        );
        let size = 1usize << nvars;
        TruthTable {
            nvars,
            on: vec![false; size],
            dc: vec![false; size],
        }
    }

    /// Number of variables.
    pub fn nvars(&self) -> u32 {
        self.nvars
    }

    /// Marks a minterm as ON (overrides a previous don't-care).
    pub fn set_on(&mut self, minterm: u32) {
        self.on[minterm as usize] = true;
        self.dc[minterm as usize] = false;
    }

    /// Marks a minterm as don't-care (ignored if already ON).
    pub fn set_dc(&mut self, minterm: u32) {
        if !self.on[minterm as usize] {
            self.dc[minterm as usize] = true;
        }
    }

    /// Whether a minterm is ON.
    pub fn is_on(&self, minterm: u32) -> bool {
        self.on[minterm as usize]
    }

    /// Whether a minterm is don't-care.
    pub fn is_dc(&self, minterm: u32) -> bool {
        self.dc[minterm as usize]
    }

    /// All ON minterms.
    pub fn on_minterms(&self) -> Vec<u32> {
        (0..self.on.len() as u32)
            .filter(|&m| self.on[m as usize])
            .collect()
    }

    /// All ON-or-don't-care minterms.
    pub fn care_or_dc_minterms(&self) -> Vec<u32> {
        (0..self.on.len() as u32)
            .filter(|&m| self.on[m as usize] || self.dc[m as usize])
            .collect()
    }
}

/// An implicant as (fixed-bit values, don't-care mask) over u32 indices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct Implicant {
    /// Values of the fixed bits (don't-care positions are zero).
    value: u32,
    /// Bit set = position is a don't-care.
    mask: u32,
}

impl Implicant {
    fn covers(self, minterm: u32) -> bool {
        (minterm & !self.mask) == self.value
    }

    fn to_cube(self, nvars: u32) -> Cube {
        let mut c = Cube::full(nvars);
        for v in 0..nvars {
            if self.mask >> v & 1 == 0 {
                let state = if self.value >> v & 1 == 1 {
                    VarState::One
                } else {
                    VarState::Zero
                };
                c.set_var(v, state);
            }
        }
        c
    }
}

/// Generates all prime implicants of `on ∪ dc` by iterative pairwise
/// merging (classic Quine-McCluskey).
///
/// The returned primes are sorted by `(mask, value)`. The merge loop
/// tracks candidates in a `HashSet`, whose iteration order varies from run
/// to run (per-thread `RandomState`); everything downstream — essential
/// selection, the Petrick search's tie-breaking, the final cover — keys on
/// prime *indices*, so an unsorted return order would make the minimized
/// cover nondeterministic and break the reproducible stage fingerprints
/// the kernel cache is addressed by.
fn prime_implicants(minterms: &[u32]) -> Vec<Implicant> {
    let mut current: HashSet<Implicant> = minterms
        .iter()
        .map(|&m| Implicant { value: m, mask: 0 })
        .collect();
    let mut primes = Vec::new();
    while !current.is_empty() {
        let list: Vec<Implicant> = current.iter().copied().collect();
        let mut merged_flags = vec![false; list.len()];
        let mut next = HashSet::new();
        for i in 0..list.len() {
            for j in (i + 1)..list.len() {
                let (a, b) = (list[i], list[j]);
                if a.mask == b.mask {
                    let diff = a.value ^ b.value;
                    if diff.count_ones() == 1 {
                        next.insert(Implicant {
                            value: a.value & !diff,
                            mask: a.mask | diff,
                        });
                        merged_flags[i] = true;
                        merged_flags[j] = true;
                    }
                }
            }
        }
        for (i, imp) in list.iter().enumerate() {
            if !merged_flags[i] {
                primes.push(*imp);
            }
        }
        current = next;
    }
    primes.sort_unstable_by_key(|p| (p.mask, p.value));
    primes
}

/// Branch-and-bound minimum set cover (Petrick's problem).
///
/// `cover_sets[p]` lists the ON-minterm indices prime `p` covers. Returns
/// the indices of a minimum-cardinality prime subset (ties broken by total
/// literal count through the caller's ordering).
fn min_cover(num_minterms: usize, cover_sets: &[Vec<usize>]) -> Vec<usize> {
    // covered_by[m] = primes covering minterm m.
    let mut covered_by: Vec<Vec<usize>> = vec![Vec::new(); num_minterms];
    for (p, set) in cover_sets.iter().enumerate() {
        for &m in set {
            covered_by[m].push(p);
        }
    }
    let mut best: Option<Vec<usize>> = None;
    let mut chosen: Vec<usize> = Vec::new();
    let mut covered = vec![0u32; num_minterms];

    fn recurse(
        covered_by: &[Vec<usize>],
        cover_sets: &[Vec<usize>],
        covered: &mut Vec<u32>,
        chosen: &mut Vec<usize>,
        best: &mut Option<Vec<usize>>,
    ) {
        // Find the uncovered minterm with the fewest candidate primes.
        let mut target: Option<usize> = None;
        for (m, &c) in covered.iter().enumerate() {
            if c == 0 {
                target = match target {
                    None => Some(m),
                    Some(t) if covered_by[m].len() < covered_by[t].len() => Some(m),
                    keep => keep,
                };
            }
        }
        let Some(m) = target else {
            // Everything covered: record the incumbent.
            if best.as_ref().is_none_or(|b| chosen.len() < b.len()) {
                *best = Some(chosen.clone());
            }
            return;
        };
        // Any completion needs at least one more prime.
        if let Some(b) = best {
            if chosen.len() + 1 >= b.len() {
                return;
            }
        }
        for &p in &covered_by[m] {
            chosen.push(p);
            for &mm in &cover_sets[p] {
                covered[mm] += 1;
            }
            recurse(covered_by, cover_sets, covered, chosen, best);
            for &mm in &cover_sets[p] {
                covered[mm] -= 1;
            }
            chosen.pop();
        }
    }

    recurse(
        &covered_by,
        cover_sets,
        &mut covered,
        &mut chosen,
        &mut best,
    );
    best.unwrap_or_default()
}

/// Exactly minimizes a truth table into a minimum-cube sum-of-products
/// cover (don't-cares used freely, as `espresso -Dso` does).
///
/// The result is guaranteed to (a) cover every ON minterm, (b) avoid every
/// OFF minterm, and (c) have the minimum possible number of product terms;
/// among minimum-term covers, a small literal count is preferred via the
/// prime ordering heuristic in the search.
///
/// The returned cover is **deterministic across runs and threads** and
/// canonically sorted: primes enter every downstream decision in sorted
/// order and the chosen cubes are sorted before returning, so repeated
/// minimization of the same table yields the identical cube sequence (the
/// synthesis-stage fingerprints depend on this).
///
/// # Panics
///
/// Panics if the table has more than [`MAX_EXACT_VARS`] variables (enforced
/// at table construction).
pub fn minimize_exact(table: &TruthTable) -> Cover {
    let nvars = table.nvars();
    let on = table.on_minterms();
    if on.is_empty() {
        return Cover::empty(nvars);
    }
    let all = table.care_or_dc_minterms();
    if all.len() == 1usize << nvars {
        // Entire space is on/dc: the full cube suffices.
        return Cover::from_cubes(nvars, vec![Cube::full(nvars)]);
    }
    let primes = prime_implicants(&all);

    // Essential primes: a prime is essential when it is the only cover of
    // some ON minterm.
    let mut cover_sets: Vec<Vec<usize>> = primes
        .iter()
        .map(|p| {
            on.iter()
                .enumerate()
                .filter(|&(_, &m)| p.covers(m))
                .map(|(i, _)| i)
                .collect()
        })
        .collect();

    let mut selected: Vec<usize> = Vec::new();
    let mut covered = vec![false; on.len()];
    for (mi, _) in on.iter().enumerate() {
        let candidates: Vec<usize> = (0..primes.len())
            .filter(|&p| cover_sets[p].contains(&mi))
            .collect();
        if candidates.len() == 1 && !selected.contains(&candidates[0]) {
            let p = candidates[0];
            selected.push(p);
            for &m in &cover_sets[p] {
                covered[m] = true;
            }
        }
    }

    // Remaining problem for Petrick.
    let remaining: Vec<usize> = (0..on.len()).filter(|&m| !covered[m]).collect();
    if !remaining.is_empty() {
        // Re-index minterms and drop primes that cover nothing remaining.
        let remap: std::collections::HashMap<usize, usize> = remaining
            .iter()
            .enumerate()
            .map(|(new, &old)| (old, new))
            .collect();
        let mut sub_primes: Vec<usize> = Vec::new();
        let mut sub_sets: Vec<Vec<usize>> = Vec::new();
        for (p, set) in cover_sets.iter_mut().enumerate() {
            let sub: Vec<usize> = set.iter().filter_map(|m| remap.get(m).copied()).collect();
            if !sub.is_empty() && !selected.contains(&p) {
                sub_primes.push(p);
                sub_sets.push(sub);
            }
        }
        // Order candidate primes by descending coverage then ascending
        // literals, so the search finds good incumbents early.
        let mut order: Vec<usize> = (0..sub_primes.len()).collect();
        order.sort_by_key(|&i| {
            (
                std::cmp::Reverse(sub_sets[i].len()),
                primes[sub_primes[i]].mask.count_ones(),
            )
        });
        let ordered_sets: Vec<Vec<usize>> = order.iter().map(|&i| sub_sets[i].clone()).collect();
        let picked = min_cover(remaining.len(), &ordered_sets);
        for idx in picked {
            selected.push(sub_primes[order[idx]]);
        }
    }

    selected.sort_unstable();
    selected.dedup();
    let cubes = selected.iter().map(|&p| primes[p].to_cube(nvars)).collect();
    let mut cover = Cover::from_cubes(nvars, cubes);
    cover.sort_canonical();
    cover
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn table_from_fn(nvars: u32, f: impl Fn(u32) -> Option<bool>) -> TruthTable {
        // f(m) = Some(true) -> on, Some(false) -> off, None -> dc.
        let mut t = TruthTable::new(nvars);
        for m in 0..(1u32 << nvars) {
            match f(m) {
                Some(true) => t.set_on(m),
                None => t.set_dc(m),
                Some(false) => {}
            }
        }
        t
    }

    fn check_valid(table: &TruthTable, cover: &Cover) {
        let n = table.nvars();
        for m in 0..(1u32 << n) {
            let bits: Vec<bool> = (0..n).map(|i| (m >> i) & 1 == 1).collect();
            let out = cover.evaluate(&bits);
            if table.is_on(m) {
                assert!(out, "minterm {m} should be covered");
            } else if !table.is_dc(m) {
                assert!(!out, "minterm {m} must not be covered");
            }
        }
    }

    #[test]
    fn xor_needs_two_cubes() {
        let t = table_from_fn(2, |m| Some((m.count_ones() % 2) == 1));
        let c = minimize_exact(&t);
        check_valid(&t, &c);
        assert_eq!(c.cube_count(), 2);
        assert_eq!(c.literal_count(), 4);
    }

    #[test]
    fn constant_functions() {
        let t0 = table_from_fn(3, |_| Some(false));
        assert_eq!(minimize_exact(&t0).cube_count(), 0);
        let t1 = table_from_fn(3, |_| Some(true));
        let c = minimize_exact(&t1);
        assert_eq!(c.cube_count(), 1);
        assert_eq!(c.literal_count(), 0);
    }

    #[test]
    fn single_minterm() {
        let t = table_from_fn(4, |m| Some(m == 0b1010));
        let c = minimize_exact(&t);
        check_valid(&t, &c);
        assert_eq!(c.cube_count(), 1);
        assert_eq!(c.literal_count(), 4);
    }

    #[test]
    fn dont_cares_merge_cubes() {
        // on = {0}, dc = {1}: a single cube !x1 (or even fewer literals).
        let t = table_from_fn(2, |m| match m {
            0 => Some(true),
            1 => None,
            _ => Some(false),
        });
        let c = minimize_exact(&t);
        check_valid(&t, &c);
        assert_eq!(c.cube_count(), 1);
        assert_eq!(c.literal_count(), 1); // !x1 covers {0,1}
    }

    #[test]
    fn classic_qm_textbook_example() {
        // f = sum m(4, 8, 10, 11, 12, 15) + d(9, 14) over 4 vars (textbook:
        // minimal SOP has 4 terms... with MSB-first labels; here bit0 = LSB
        // of the minterm index). The known minimum is 4 cubes.
        let on = [4u32, 8, 10, 11, 12, 15];
        let dc = [9u32, 14];
        let t = table_from_fn(4, |m| {
            if on.contains(&m) {
                Some(true)
            } else if dc.contains(&m) {
                None
            } else {
                Some(false)
            }
        });
        let c = minimize_exact(&t);
        check_valid(&t, &c);
        assert!(
            c.cube_count() <= 4,
            "expected <= 4 cubes, got {}",
            c.cube_count()
        );
    }

    #[test]
    fn full_dc_space_collapses() {
        let t = table_from_fn(3, |m| if m == 0 { Some(true) } else { None });
        let c = minimize_exact(&t);
        assert_eq!(c.cube_count(), 1);
        assert_eq!(c.literal_count(), 0);
    }

    #[test]
    fn majority_function() {
        let t = table_from_fn(3, |m| Some(m.count_ones() >= 2));
        let c = minimize_exact(&t);
        check_valid(&t, &c);
        // Majority-of-3 minimal SOP: ab + ac + bc.
        assert_eq!(c.cube_count(), 3);
        assert_eq!(c.literal_count(), 6);
    }

    #[test]
    #[should_panic(expected = "limited to")]
    fn too_many_vars_rejected() {
        let _ = TruthTable::new(20);
    }

    /// The minimized cover must be the identical cube sequence on every
    /// run. `HashSet`/`HashMap` iteration order differs per *thread*
    /// (`RandomState` keys are generated per thread), so minimizing the
    /// same tables on freshly spawned threads is a faithful stand-in for
    /// separate processes: any hash-order dependence left in the pipeline
    /// shows up as diverging covers here. Pins the determinism the
    /// synthesis-stage fingerprints and the kernel cache rely on.
    #[test]
    fn minimization_is_deterministic_across_threads() {
        // A batch of awkward tables: xor-ish, majority, random-looking
        // bit patterns with don't-cares, single minterms.
        let tables: Vec<TruthTable> = vec![
            table_from_fn(4, |m| Some((m.count_ones() % 2) == 1)),
            table_from_fn(4, |m| Some(m.count_ones() >= 2)),
            table_from_fn(6, |m| Some((0x9b71_d224_ae62_c1f3u64 >> m) & 1 == 1)),
            table_from_fn(6, |m| match (0xcafe_f00d_dead_beefu64 >> m) & 3 {
                0 | 1 => Some(false),
                2 => Some(true),
                _ => None,
            }),
            table_from_fn(5, |m| Some(m == 13)),
        ];
        let run = |tables: Vec<TruthTable>| -> Vec<String> {
            tables
                .iter()
                .map(|t| format!("{:?}", minimize_exact(t)))
                .collect()
        };
        let here = run(tables.clone());
        for round in 0..4 {
            let cloned = tables.clone();
            let there = std::thread::spawn(move || run(cloned))
                .join()
                .expect("worker thread");
            assert_eq!(here, there, "round {round}: cover order diverged");
        }
    }

    /// Brute-force minimum cube count by trying all k-subsets of primes in
    /// increasing k, for cross-checking optimality on tiny functions.
    fn brute_minimum_cubes(table: &TruthTable) -> usize {
        let on = table.on_minterms();
        if on.is_empty() {
            return 0;
        }
        let primes = prime_implicants(&table.care_or_dc_minterms());

        fn choose(
            primes: &[Implicant],
            on: &[u32],
            start: usize,
            left: usize,
            picked: &mut Vec<usize>,
        ) -> bool {
            if left == 0 {
                return on
                    .iter()
                    .all(|&m| picked.iter().any(|&p| primes[p].covers(m)));
            }
            for p in start..primes.len() {
                picked.push(p);
                if choose(primes, on, p + 1, left - 1, picked) {
                    picked.pop();
                    return true;
                }
                picked.pop();
            }
            false
        }

        for k in 1..=primes.len() {
            let mut picked = Vec::new();
            if choose(&primes, &on, 0, k, &mut picked) {
                return k;
            }
        }
        unreachable!("the full prime set always covers the ON-set")
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Random 4-variable functions: result is valid and cube-minimal.
        #[test]
        fn prop_exact_is_minimal(bits in any::<u16>(), dc_bits in any::<u16>()) {
            let t = table_from_fn(4, |m| {
                if (bits >> m) & 1 == 1 {
                    Some(true)
                } else if (dc_bits >> m) & 1 == 1 {
                    None
                } else {
                    Some(false)
                }
            });
            let c = minimize_exact(&t);
            check_valid(&t, &c);
            let brute = brute_minimum_cubes(&t);
            prop_assert_eq!(c.cube_count(), brute,
                "got {} cubes, brute-force minimum {}", c.cube_count(), brute);
        }

        /// Random 6-variable functions: result is valid (minimality checked
        /// at 4 vars above; 6-var brute force is too slow).
        #[test]
        fn prop_exact_is_valid_6vars(words in proptest::collection::vec(any::<u64>(), 2)) {
            let t = table_from_fn(6, |m| {
                let w = words[(m / 64) as usize];
                Some((w >> (m % 64)) & 1 == 1)
            });
            let c = minimize_exact(&t);
            check_valid(&t, &c);
        }
    }
}
