//! Cubes in positional-cube notation over an arbitrary number of variables.

use core::fmt;

/// The state of one variable inside a [`Cube`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VarState {
    /// The cube requires this variable to be 0 (`mask0` only).
    Zero,
    /// The cube requires this variable to be 1 (`mask1` only).
    One,
    /// The cube does not constrain this variable.
    DontCare,
}

/// A product term over `nvars` Boolean variables.
///
/// Internally each variable carries two bits ("may be 0" / "may be 1"):
/// `11` is a don't-care, `01`/`10` are literals, and `00` would be an empty
/// (contradictory) cube — never representable through this API because
/// intersections that produce `00` return `None` instead.
///
/// Cubes are totally ordered by their representation (mask words, then
/// variable count). The order has no Boolean meaning; it exists so cube
/// lists can be sorted into one canonical sequence — minimizer outputs are
/// ordered this way to keep downstream content fingerprints reproducible
/// across runs.
///
/// # Examples
///
/// ```
/// use ctgauss_boolmin::{Cube, VarState};
///
/// // The cube x0 & !x2 over 3 variables.
/// let c = Cube::full(3).with_var(0, VarState::One).with_var(2, VarState::Zero);
/// assert!(c.contains_assignment(&[true, false, false]));
/// assert!(!c.contains_assignment(&[true, false, true]));
/// assert_eq!(c.literal_count(), 2);
/// ```
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Cube {
    /// Bit `i` set: variable `i` may take value 0.
    mask0: Vec<u64>,
    /// Bit `i` set: variable `i` may take value 1.
    mask1: Vec<u64>,
    nvars: u32,
}

fn words_for(nvars: u32) -> usize {
    (nvars as usize).div_ceil(64)
}

/// A mask with ones in all positions `< nvars` of the last word.
fn tail_mask(nvars: u32) -> u64 {
    let rem = nvars % 64;
    if rem == 0 {
        u64::MAX
    } else {
        (1u64 << rem) - 1
    }
}

impl Cube {
    /// The universal cube (every variable don't-care).
    pub fn full(nvars: u32) -> Self {
        let w = words_for(nvars);
        let mut mask = vec![u64::MAX; w];
        if w > 0 {
            mask[w - 1] = tail_mask(nvars);
        }
        Cube {
            mask0: mask.clone(),
            mask1: mask,
            nvars,
        }
    }

    /// A minterm: every variable fixed to the given assignment.
    pub fn from_assignment(bits: &[bool]) -> Self {
        let mut c = Cube::full(bits.len() as u32);
        for (i, &b) in bits.iter().enumerate() {
            c.set_var(i as u32, if b { VarState::One } else { VarState::Zero });
        }
        c
    }

    /// Number of variables in the cube's space.
    pub fn nvars(&self) -> u32 {
        self.nvars
    }

    /// Sets one variable's state in place.
    ///
    /// # Panics
    ///
    /// Panics if `var >= nvars`.
    pub fn set_var(&mut self, var: u32, state: VarState) {
        assert!(var < self.nvars, "variable {var} out of range");
        let (w, b) = ((var / 64) as usize, var % 64);
        let bit = 1u64 << b;
        match state {
            VarState::Zero => {
                self.mask0[w] |= bit;
                self.mask1[w] &= !bit;
            }
            VarState::One => {
                self.mask0[w] &= !bit;
                self.mask1[w] |= bit;
            }
            VarState::DontCare => {
                self.mask0[w] |= bit;
                self.mask1[w] |= bit;
            }
        }
    }

    /// Builder-style [`set_var`](Self::set_var).
    #[must_use]
    pub fn with_var(mut self, var: u32, state: VarState) -> Self {
        self.set_var(var, state);
        self
    }

    /// Reads one variable's state.
    ///
    /// # Panics
    ///
    /// Panics if `var >= nvars`.
    pub fn var(&self, var: u32) -> VarState {
        assert!(var < self.nvars, "variable {var} out of range");
        let (w, b) = ((var / 64) as usize, var % 64);
        match ((self.mask0[w] >> b) & 1, (self.mask1[w] >> b) & 1) {
            (1, 1) => VarState::DontCare,
            (1, 0) => VarState::Zero,
            (0, 1) => VarState::One,
            _ => unreachable!("empty variable state cannot be constructed"),
        }
    }

    /// Number of constrained variables (literals in the product term).
    pub fn literal_count(&self) -> u32 {
        let mut dc = 0;
        for w in 0..self.mask0.len() {
            dc += (self.mask0[w] & self.mask1[w]).count_ones();
        }
        self.nvars - dc
    }

    /// Whether the cube covers the given full assignment.
    ///
    /// # Panics
    ///
    /// Panics if the assignment length differs from `nvars`.
    pub fn contains_assignment(&self, bits: &[bool]) -> bool {
        assert_eq!(bits.len() as u32, self.nvars, "assignment length mismatch");
        bits.iter().enumerate().all(|(i, &b)| {
            let (w, o) = ((i / 64), (i % 64) as u32);
            let mask = if b { &self.mask1 } else { &self.mask0 };
            (mask[w] >> o) & 1 == 1
        })
    }

    /// Whether `self` covers every assignment of `other` (`other ⊆ self`).
    pub fn contains(&self, other: &Cube) -> bool {
        debug_assert_eq!(self.nvars, other.nvars);
        for w in 0..self.mask0.len() {
            if other.mask0[w] & !self.mask0[w] != 0 || other.mask1[w] & !self.mask1[w] != 0 {
                return false;
            }
        }
        true
    }

    /// The intersection of two cubes, or `None` when they are disjoint.
    pub fn intersect(&self, other: &Cube) -> Option<Cube> {
        debug_assert_eq!(self.nvars, other.nvars);
        let mut mask0 = Vec::with_capacity(self.mask0.len());
        let mut mask1 = Vec::with_capacity(self.mask1.len());
        for w in 0..self.mask0.len() {
            let m0 = self.mask0[w] & other.mask0[w];
            let m1 = self.mask1[w] & other.mask1[w];
            // Some variable lost both options: empty intersection.
            if (m0 | m1) != self.full_word(w) {
                return None;
            }
            mask0.push(m0);
            mask1.push(m1);
        }
        Some(Cube {
            mask0,
            mask1,
            nvars: self.nvars,
        })
    }

    fn full_word(&self, w: usize) -> u64 {
        if w + 1 == self.mask0.len() {
            tail_mask(self.nvars)
        } else {
            u64::MAX
        }
    }

    /// Whether the two cubes intersect.
    pub fn intersects(&self, other: &Cube) -> bool {
        debug_assert_eq!(self.nvars, other.nvars);
        for w in 0..self.mask0.len() {
            let m0 = self.mask0[w] & other.mask0[w];
            let m1 = self.mask1[w] & other.mask1[w];
            if (m0 | m1) != self.full_word(w) {
                return false;
            }
        }
        true
    }

    /// The cofactor of this cube with respect to `var = value`: `None` if
    /// the cube excludes that value, otherwise the cube with `var` freed.
    pub fn cofactor(&self, var: u32, value: bool) -> Option<Cube> {
        match (self.var(var), value) {
            (VarState::Zero, true) | (VarState::One, false) => None,
            _ => Some(self.clone().with_var(var, VarState::DontCare)),
        }
    }

    /// The smallest cube containing both inputs (component-wise union).
    pub fn supercube(&self, other: &Cube) -> Cube {
        debug_assert_eq!(self.nvars, other.nvars);
        let mask0 = self
            .mask0
            .iter()
            .zip(&other.mask0)
            .map(|(a, b)| a | b)
            .collect();
        let mask1 = self
            .mask1
            .iter()
            .zip(&other.mask1)
            .map(|(a, b)| a | b)
            .collect();
        Cube {
            mask0,
            mask1,
            nvars: self.nvars,
        }
    }

    /// Variables on which the cube depends, in ascending order.
    pub fn support(&self) -> Vec<u32> {
        (0..self.nvars)
            .filter(|&v| self.var(v) != VarState::DontCare)
            .collect()
    }

    /// Number of assignments the cube covers: `2^(nvars - literals)`,
    /// saturating at `u128::MAX` for enormous spaces.
    pub fn size_log2(&self) -> u32 {
        self.nvars - self.literal_count()
    }
}

impl fmt::Debug for Cube {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Cube(")?;
        for v in 0..self.nvars {
            let c = match self.var(v) {
                VarState::Zero => '0',
                VarState::One => '1',
                VarState::DontCare => '-',
            };
            write!(f, "{c}")?;
        }
        write!(f, ")")
    }
}

impl fmt::Display for Cube {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for v in 0..self.nvars {
            match self.var(v) {
                VarState::DontCare => continue,
                VarState::One => {
                    if !first {
                        write!(f, "&")?;
                    }
                    write!(f, "x{v}")?;
                }
                VarState::Zero => {
                    if !first {
                        write!(f, "&")?;
                    }
                    write!(f, "!x{v}")?;
                }
            }
            first = false;
        }
        if first {
            write!(f, "1")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_cube_covers_everything() {
        let c = Cube::full(5);
        assert_eq!(c.literal_count(), 0);
        assert!(c.contains_assignment(&[true; 5]));
        assert!(c.contains_assignment(&[false; 5]));
        assert_eq!(c.size_log2(), 5);
    }

    #[test]
    fn minterm_covers_only_itself() {
        let bits = [true, false, true];
        let c = Cube::from_assignment(&bits);
        assert_eq!(c.literal_count(), 3);
        assert!(c.contains_assignment(&bits));
        assert!(!c.contains_assignment(&[true, false, false]));
        assert_eq!(c.size_log2(), 0);
    }

    #[test]
    fn var_states_roundtrip() {
        let mut c = Cube::full(70); // crosses a word boundary
        c.set_var(0, VarState::One);
        c.set_var(63, VarState::Zero);
        c.set_var(64, VarState::One);
        c.set_var(69, VarState::Zero);
        assert_eq!(c.var(0), VarState::One);
        assert_eq!(c.var(63), VarState::Zero);
        assert_eq!(c.var(64), VarState::One);
        assert_eq!(c.var(69), VarState::Zero);
        assert_eq!(c.var(5), VarState::DontCare);
        assert_eq!(c.literal_count(), 4);
        c.set_var(0, VarState::DontCare);
        assert_eq!(c.var(0), VarState::DontCare);
        assert_eq!(c.literal_count(), 3);
    }

    #[test]
    fn containment() {
        let big = Cube::full(4).with_var(0, VarState::One);
        let small = Cube::full(4)
            .with_var(0, VarState::One)
            .with_var(2, VarState::Zero);
        assert!(big.contains(&small));
        assert!(!small.contains(&big));
        assert!(big.contains(&big));
    }

    #[test]
    fn intersection_and_disjointness() {
        let a = Cube::full(3).with_var(0, VarState::One);
        let b = Cube::full(3).with_var(0, VarState::Zero);
        assert!(a.intersect(&b).is_none());
        assert!(!a.intersects(&b));

        let c = Cube::full(3).with_var(1, VarState::One);
        let i = a.intersect(&c).unwrap();
        assert_eq!(i.var(0), VarState::One);
        assert_eq!(i.var(1), VarState::One);
        assert!(a.intersects(&c));
    }

    #[test]
    fn cofactor_frees_variable() {
        let c = Cube::full(3)
            .with_var(0, VarState::One)
            .with_var(1, VarState::Zero);
        let cf = c.cofactor(0, true).unwrap();
        assert_eq!(cf.var(0), VarState::DontCare);
        assert_eq!(cf.var(1), VarState::Zero);
        assert!(c.cofactor(0, false).is_none());
        // Cofactor on a don't-care variable keeps the cube.
        let cf2 = c.cofactor(2, true).unwrap();
        assert_eq!(cf2.var(1), VarState::Zero);
    }

    #[test]
    fn supercube_is_smallest_superset() {
        let a = Cube::from_assignment(&[true, true, false]);
        let b = Cube::from_assignment(&[true, false, false]);
        let s = a.supercube(&b);
        assert_eq!(s.var(0), VarState::One);
        assert_eq!(s.var(1), VarState::DontCare);
        assert_eq!(s.var(2), VarState::Zero);
    }

    #[test]
    fn support_lists_constrained_vars() {
        let c = Cube::full(100)
            .with_var(3, VarState::One)
            .with_var(97, VarState::Zero);
        assert_eq!(c.support(), vec![3, 97]);
    }

    #[test]
    fn display_forms() {
        let c = Cube::full(3)
            .with_var(0, VarState::One)
            .with_var(2, VarState::Zero);
        assert_eq!(c.to_string(), "x0&!x2");
        assert_eq!(Cube::full(2).to_string(), "1");
        assert_eq!(format!("{c:?}"), "Cube(1-0)");
    }
}
