//! Boolean expression trees with shared subterms.
//!
//! The constant-time sampler of the paper is a big Boolean expression per
//! output bit: sums of products from the minimized sublist covers, chained
//! by the constant-time if-else (`mux`) construction of Section 5.2,
//!
//! ```text
//! f = c_0 ? f_0 : (c_1 ? f_1 : (... : f_n'))    with  c ? a : b = (c & a) | (!c & b)
//! ```
//!
//! Expressions use reference-counted sharing so the common prefix chains
//! `b_0 & b_1 & ... & b_k` are represented once; the bitslice compiler's
//! hash-consing then emits each shared node once.

use std::collections::HashSet;
use std::rc::Rc;

use crate::{Cover, VarState};

/// A Boolean expression over variables `x_0 .. x_{n-1}`.
///
/// # Examples
///
/// ```
/// use ctgauss_boolmin::Expr;
///
/// let e = Expr::mux(Expr::var(0), Expr::var(1), Expr::constant(false));
/// assert!(e.evaluate(&[true, true, false]));
/// assert!(!e.evaluate(&[false, true, false]));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Expr {
    /// A constant.
    Const(bool),
    /// Input variable `x_i`.
    Var(u32),
    /// Logical negation.
    Not(Rc<Expr>),
    /// Conjunction.
    And(Rc<Expr>, Rc<Expr>),
    /// Disjunction.
    Or(Rc<Expr>, Rc<Expr>),
    /// Exclusive or.
    Xor(Rc<Expr>, Rc<Expr>),
}

/// Size metrics of an expression DAG.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ExprStats {
    /// Distinct non-leaf nodes (gates), counting shared nodes once.
    pub gates: usize,
    /// Distinct variables referenced.
    pub vars: usize,
    /// Nodes counting repeats (tree size).
    pub tree_nodes: usize,
}

impl Expr {
    /// The constant expression.
    pub fn constant(v: bool) -> Rc<Expr> {
        Rc::new(Expr::Const(v))
    }

    /// Variable `x_i`.
    pub fn var(i: u32) -> Rc<Expr> {
        Rc::new(Expr::Var(i))
    }

    /// Negation with peephole simplification (`!!e = e`, constants fold).
    #[allow(clippy::should_implement_trait)]
    pub fn not(e: Rc<Expr>) -> Rc<Expr> {
        match &*e {
            Expr::Const(v) => Expr::constant(!v),
            Expr::Not(inner) => Rc::clone(inner),
            _ => Rc::new(Expr::Not(e)),
        }
    }

    /// Conjunction with constant folding.
    pub fn and(a: Rc<Expr>, b: Rc<Expr>) -> Rc<Expr> {
        match (&*a, &*b) {
            (Expr::Const(false), _) | (_, Expr::Const(false)) => Expr::constant(false),
            (Expr::Const(true), _) => b,
            (_, Expr::Const(true)) => a,
            _ => Rc::new(Expr::And(a, b)),
        }
    }

    /// Disjunction with constant folding.
    pub fn or(a: Rc<Expr>, b: Rc<Expr>) -> Rc<Expr> {
        match (&*a, &*b) {
            (Expr::Const(true), _) | (_, Expr::Const(true)) => Expr::constant(true),
            (Expr::Const(false), _) => b,
            (_, Expr::Const(false)) => a,
            _ => Rc::new(Expr::Or(a, b)),
        }
    }

    /// Exclusive-or with constant folding.
    pub fn xor(a: Rc<Expr>, b: Rc<Expr>) -> Rc<Expr> {
        match (&*a, &*b) {
            (Expr::Const(false), _) => b,
            (_, Expr::Const(false)) => a,
            (Expr::Const(true), _) => Expr::not(b),
            (_, Expr::Const(true)) => Expr::not(a),
            _ => Rc::new(Expr::Xor(a, b)),
        }
    }

    /// The constant-time selector of Section 5.2:
    /// `sel ? then : other = (sel & then) | (!sel & other)`.
    pub fn mux(sel: Rc<Expr>, then: Rc<Expr>, other: Rc<Expr>) -> Rc<Expr> {
        Expr::or(
            Expr::and(Rc::clone(&sel), then),
            Expr::and(Expr::not(sel), other),
        )
    }

    /// Sum-of-products expression for a [`Cover`], with variables remapped
    /// through `var_map` (cover variable `i` becomes expression variable
    /// `var_map[i]`).
    ///
    /// # Panics
    ///
    /// Panics if `var_map` is shorter than the cover's variable count.
    pub fn from_cover(cover: &Cover, var_map: &[u32]) -> Rc<Expr> {
        assert!(
            var_map.len() >= cover.nvars() as usize,
            "var_map must cover all {} cover variables",
            cover.nvars()
        );
        let mut sum = Expr::constant(false);
        for cube in cover.cubes() {
            let mut product = Expr::constant(true);
            for v in cube.support() {
                let lit = match cube.var(v) {
                    VarState::One => Expr::var(var_map[v as usize]),
                    VarState::Zero => Expr::not(Expr::var(var_map[v as usize])),
                    VarState::DontCare => unreachable!("support excludes don't-cares"),
                };
                product = Expr::and(product, lit);
            }
            sum = Expr::or(sum, product);
        }
        sum
    }

    /// Evaluates on a full assignment (index = variable number).
    ///
    /// # Panics
    ///
    /// Panics if a referenced variable is out of range.
    pub fn evaluate(&self, bits: &[bool]) -> bool {
        match self {
            Expr::Const(v) => *v,
            Expr::Var(i) => bits[*i as usize],
            Expr::Not(e) => !e.evaluate(bits),
            Expr::And(a, b) => a.evaluate(bits) && b.evaluate(bits),
            Expr::Or(a, b) => a.evaluate(bits) || b.evaluate(bits),
            Expr::Xor(a, b) => a.evaluate(bits) ^ b.evaluate(bits),
        }
    }

    /// Computes DAG statistics (shared nodes counted once via pointer
    /// identity).
    pub fn stats(self: &Rc<Expr>) -> ExprStats {
        let mut seen: HashSet<*const Expr> = HashSet::new();
        let mut vars: HashSet<u32> = HashSet::new();
        let mut gates = 0usize;
        let mut tree_nodes = 0usize;
        fn walk(
            e: &Rc<Expr>,
            seen: &mut HashSet<*const Expr>,
            vars: &mut HashSet<u32>,
            gates: &mut usize,
            tree: &mut usize,
        ) {
            *tree += 1;
            let new = seen.insert(Rc::as_ptr(e));
            match &**e {
                Expr::Const(_) => {}
                Expr::Var(i) => {
                    vars.insert(*i);
                }
                Expr::Not(a) => {
                    if new {
                        *gates += 1;
                    }
                    walk(a, seen, vars, gates, tree);
                }
                Expr::And(a, b) | Expr::Or(a, b) | Expr::Xor(a, b) => {
                    if new {
                        *gates += 1;
                    }
                    walk(a, seen, vars, gates, tree);
                    walk(b, seen, vars, gates, tree);
                }
            }
        }
        let s = self.clone();
        // Take a reference to self (Rc) without moving.
        walk(&s, &mut seen, &mut vars, &mut gates, &mut tree_nodes);
        ExprStats {
            gates,
            vars: vars.len(),
            tree_nodes,
        }
    }

    /// The highest variable index referenced, or `None` for constant
    /// expressions.
    pub fn max_var(&self) -> Option<u32> {
        match self {
            Expr::Const(_) => None,
            Expr::Var(i) => Some(*i),
            Expr::Not(e) => e.max_var(),
            Expr::And(a, b) | Expr::Or(a, b) | Expr::Xor(a, b) => {
                match (a.max_var(), b.max_var()) {
                    (Some(x), Some(y)) => Some(x.max(y)),
                    (x, None) => x,
                    (None, y) => y,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Cube;

    #[test]
    fn constant_folding() {
        assert_eq!(*Expr::and(Expr::constant(true), Expr::var(0)), Expr::Var(0));
        assert_eq!(
            *Expr::and(Expr::constant(false), Expr::var(0)),
            Expr::Const(false)
        );
        assert_eq!(*Expr::or(Expr::constant(false), Expr::var(1)), Expr::Var(1));
        assert_eq!(
            *Expr::or(Expr::constant(true), Expr::var(1)),
            Expr::Const(true)
        );
        assert_eq!(*Expr::not(Expr::not(Expr::var(2))), Expr::Var(2));
        assert_eq!(
            *Expr::xor(Expr::constant(true), Expr::constant(true)),
            Expr::Const(false)
        );
    }

    #[test]
    fn mux_truth_table() {
        let m = Expr::mux(Expr::var(0), Expr::var(1), Expr::var(2));
        // sel=1 -> then
        assert!(m.evaluate(&[true, true, false]));
        assert!(!m.evaluate(&[true, false, true]));
        // sel=0 -> other
        assert!(m.evaluate(&[false, false, true]));
        assert!(!m.evaluate(&[false, true, false]));
    }

    #[test]
    fn from_cover_matches_cover() {
        // f = x0 & !x1 + x2
        let cover = Cover::from_cubes(
            3,
            vec![
                Cube::full(3)
                    .with_var(0, crate::VarState::One)
                    .with_var(1, crate::VarState::Zero),
                Cube::full(3).with_var(2, crate::VarState::One),
            ],
        );
        let expr = Expr::from_cover(&cover, &[0, 1, 2]);
        for m in 0u32..8 {
            let bits: Vec<bool> = (0..3).map(|i| (m >> i) & 1 == 1).collect();
            assert_eq!(
                expr.evaluate(&bits),
                cover.evaluate(&bits),
                "assignment {m:03b}"
            );
        }
    }

    #[test]
    fn from_cover_remaps_variables() {
        // Cover over 2 vars mapped to expression vars 10 and 20.
        let cover = Cover::from_cubes(
            2,
            vec![Cube::full(2)
                .with_var(0, crate::VarState::One)
                .with_var(1, crate::VarState::Zero)],
        );
        let expr = Expr::from_cover(&cover, &[10, 20]);
        let mut bits = vec![false; 21];
        bits[10] = true;
        assert!(expr.evaluate(&bits));
        bits[20] = true;
        assert!(!expr.evaluate(&bits));
        assert_eq!(expr.max_var(), Some(20));
    }

    #[test]
    fn empty_cover_is_false() {
        let expr = Expr::from_cover(&Cover::empty(3), &[0, 1, 2]);
        assert_eq!(*expr, Expr::Const(false));
        assert_eq!(expr.max_var(), None);
    }

    #[test]
    fn stats_count_shared_nodes_once() {
        let shared = Expr::and(Expr::var(0), Expr::var(1));
        let top = Expr::or(Rc::clone(&shared), Expr::not(shared));
        let stats = top.stats();
        // Gates: shared AND (once), NOT, OR = 3; tree nodes count the AND
        // twice.
        assert_eq!(stats.gates, 3);
        assert_eq!(stats.vars, 2);
        assert!(stats.tree_nodes > stats.gates);
    }

    #[test]
    fn deep_mux_chain_evaluates() {
        // Build c_0 ? v_100 : (c_1 ? v_101 : ... ) 50 deep.
        let mut expr = Expr::var(200);
        for i in (0..50).rev() {
            expr = Expr::mux(Expr::var(i), Expr::var(100 + i), expr);
        }
        let mut bits = vec![false; 201];
        bits[3] = true; // first true selector
        bits[103] = true;
        assert!(expr.evaluate(&bits));
        bits[103] = false;
        assert!(!expr.evaluate(&bits));
    }
}
