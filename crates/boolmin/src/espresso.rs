//! An Espresso-style heuristic minimizer over explicit cube lists.
//!
//! Used for the prior work's "simple minimization" baseline (\[21\], compared
//! in Table 2), where one cover over all `n` (up to 128) input variables is
//! minimized directly. Exact minimization is hopeless there; the classic
//! EXPAND / IRREDUNDANT loop is not.
//!
//! Unlike textbook Espresso we always have the OFF-set explicitly (the DDG
//! leaves whose sample bit is 0), so EXPAND validity checks are simple
//! cube-disjointness tests instead of tautology calls.

use crate::{Cover, Cube, VarState};

/// Heuristically minimizes `on` against an explicit `off` cover; anything
/// outside `on ∪ off` is treated as a don't-care.
///
/// The result covers every `on` cube, intersects no `off` cube, and is
/// irredundant (no cube can be dropped). Runs EXPAND + IRREDUNDANT until a
/// fixed point (usually two passes).
///
/// # Panics
///
/// Panics if an `on` cube intersects an `off` cube (the specification is
/// contradictory).
///
/// # Examples
///
/// ```
/// use ctgauss_boolmin::{minimize_heuristic, Cover, Cube, VarState};
///
/// // on = {00}, off = {11}: a single literal suffices.
/// let on = Cover::from_cubes(2, vec![Cube::from_assignment(&[false, false])]);
/// let off = Cover::from_cubes(2, vec![Cube::from_assignment(&[true, true])]);
/// let min = minimize_heuristic(&on, &off);
/// assert_eq!(min.cube_count(), 1);
/// assert_eq!(min.literal_count(), 1);
/// ```
pub fn minimize_heuristic(on: &Cover, off: &Cover) -> Cover {
    let nvars = on.nvars();
    assert_eq!(nvars, off.nvars(), "on/off variable count mismatch");
    for c_on in on.cubes() {
        for c_off in off.cubes() {
            assert!(
                !c_on.intersects(c_off),
                "contradictory specification: on cube {c_on:?} meets off cube {c_off:?}"
            );
        }
    }

    let mut current: Vec<Cube> = on.cubes().to_vec();
    let mut best_cost = cost(&current);
    loop {
        let expanded = expand(&current, off);
        let irredundant = make_irredundant(expanded, nvars);
        let new_cost = cost(&irredundant);
        current = irredundant;
        if new_cost >= best_cost {
            break;
        }
        best_cost = new_cost;
    }
    let mut out = Cover::from_cubes(nvars, current);
    out.remove_contained();
    // The loop above is already deterministic (stable sorts over value
    // orderings); canonical output order additionally makes equal results
    // byte-identical, which the synthesis-stage fingerprints key on.
    out.sort_canonical();
    out
}

/// (cube count, literal count) — lexicographic cost, cubes first.
fn cost(cubes: &[Cube]) -> (usize, u32) {
    (cubes.len(), cubes.iter().map(Cube::literal_count).sum())
}

/// EXPAND: for each cube (largest first), greedily raise literals to
/// don't-care while the cube stays disjoint from the OFF-set; then drop
/// cubes contained in an already-expanded one.
fn expand(cubes: &[Cube], off: &Cover) -> Vec<Cube> {
    let mut order: Vec<usize> = (0..cubes.len()).collect();
    // Large cubes first: they are the most likely to swallow others.
    order.sort_by_key(|&i| std::cmp::Reverse(cubes[i].size_log2()));

    let mut result: Vec<Cube> = Vec::with_capacity(cubes.len());
    'outer: for &i in &order {
        let mut cube = cubes[i].clone();
        // Skip if an already-expanded cube covers this one.
        for done in &result {
            if done.contains(&cube) {
                continue 'outer;
            }
        }
        // Try raising each literal. Order: variables whose raise frees the
        // most OFF-distance last — a simple static order suffices here.
        for v in cube.support() {
            let raised = cube.clone().with_var(v, VarState::DontCare);
            if !intersects_cover(&raised, off) {
                cube = raised;
            }
        }
        result.push(cube);
    }
    result
}

fn intersects_cover(cube: &Cube, cover: &Cover) -> bool {
    cover.cubes().iter().any(|c| c.intersects(cube))
}

/// IRREDUNDANT: greedily removes cubes covered by the union of the others
/// (smallest cubes considered for removal first).
fn make_irredundant(mut cubes: Vec<Cube>, nvars: u32) -> Vec<Cube> {
    cubes.sort_by_key(Cube::size_log2);
    let mut keep: Vec<bool> = vec![true; cubes.len()];
    for i in 0..cubes.len() {
        // Build the cover of all other kept cubes.
        let others: Vec<Cube> = (0..cubes.len())
            .filter(|&j| j != i && keep[j])
            .map(|j| cubes[j].clone())
            .collect();
        if others.is_empty() {
            continue;
        }
        let others_cover = Cover::from_cubes(nvars, others);
        if others_cover.covers_cube(&cubes[i]) {
            keep[i] = false;
        }
    }
    cubes
        .into_iter()
        .zip(keep)
        .filter_map(|(c, k)| k.then_some(c))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn cube(pattern: &str) -> Cube {
        let mut c = Cube::full(pattern.len() as u32);
        for (i, ch) in pattern.chars().enumerate() {
            match ch {
                '0' => c.set_var(i as u32, VarState::Zero),
                '1' => c.set_var(i as u32, VarState::One),
                '-' => {}
                _ => panic!("bad pattern {ch}"),
            }
        }
        c
    }

    fn cover(patterns: &[&str]) -> Cover {
        let n = patterns[0].len() as u32;
        Cover::from_cubes(n, patterns.iter().map(|p| cube(p)).collect())
    }

    fn check_result(min: &Cover, on: &Cover, off: &Cover) {
        let n = min.nvars();
        assert!(n <= 16, "exhaustive check limited");
        for m in 0u32..(1 << n) {
            let bits: Vec<bool> = (0..n).map(|i| (m >> i) & 1 == 1).collect();
            if on.evaluate(&bits) {
                assert!(min.evaluate(&bits), "on point {m} lost");
            }
            if off.evaluate(&bits) {
                assert!(!min.evaluate(&bits), "off point {m} covered");
            }
        }
    }

    #[test]
    fn expands_to_single_literal() {
        let on = cover(&["00"]);
        let off = cover(&["11"]);
        let min = minimize_heuristic(&on, &off);
        check_result(&min, &on, &off);
        assert_eq!(min.cube_count(), 1);
        assert_eq!(min.literal_count(), 1);
    }

    #[test]
    fn merges_adjacent_minterms() {
        let on = cover(&["000", "001", "010", "011"]);
        let off = cover(&["1--"]);
        let min = minimize_heuristic(&on, &off);
        check_result(&min, &on, &off);
        assert_eq!(min.cube_count(), 1);
        assert_eq!(min.literal_count(), 1); // !x0
    }

    #[test]
    fn keeps_xor_structure() {
        let on = cover(&["10", "01"]);
        let off = cover(&["00", "11"]);
        let min = minimize_heuristic(&on, &off);
        check_result(&min, &on, &off);
        assert_eq!(min.cube_count(), 2);
    }

    #[test]
    fn removes_redundant_cubes() {
        // Three cubes where the middle one is covered by the others after
        // expansion: on = x0 + x0&x1 + !x0 with off empty except nothing —
        // with an empty off-set everything expands to the full cube.
        let on = cover(&["1-", "11", "0-"]);
        let off = Cover::empty(2);
        let min = minimize_heuristic(&on, &off);
        check_result(&min, &on, &off);
        assert_eq!(min.cube_count(), 1);
        assert_eq!(min.literal_count(), 0);
    }

    #[test]
    fn handles_wide_variable_spaces() {
        // 100 variables; on depends only on x7 and x93.
        let mut on_cube = Cube::full(100);
        on_cube.set_var(7, VarState::One);
        on_cube.set_var(93, VarState::Zero);
        let mut off_cube = Cube::full(100);
        off_cube.set_var(7, VarState::Zero);
        let mut off_cube2 = Cube::full(100);
        off_cube2.set_var(93, VarState::One);
        let on = Cover::from_cubes(100, vec![on_cube]);
        let off = Cover::from_cubes(100, vec![off_cube, off_cube2]);
        let min = minimize_heuristic(&on, &off);
        assert_eq!(min.cube_count(), 1);
        assert_eq!(min.literal_count(), 2);
    }

    #[test]
    #[should_panic(expected = "contradictory")]
    fn rejects_overlapping_on_off() {
        let on = cover(&["1-"]);
        let off = cover(&["11"]);
        let _ = minimize_heuristic(&on, &off);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// Random partitions of the 5-var space into on/off/dc: the result
        /// is always valid and never larger than the input.
        #[test]
        fn prop_valid_and_no_worse(labels in proptest::collection::vec(0u8..3, 32)) {
            let mut on_cubes = Vec::new();
            let mut off_cubes = Vec::new();
            for (m, &l) in labels.iter().enumerate() {
                let bits: Vec<bool> = (0..5).map(|i| (m >> i) & 1 == 1).collect();
                match l {
                    0 => on_cubes.push(Cube::from_assignment(&bits)),
                    1 => off_cubes.push(Cube::from_assignment(&bits)),
                    _ => {}
                }
            }
            prop_assume!(!on_cubes.is_empty());
            let on = Cover::from_cubes(5, on_cubes);
            let off = Cover::from_cubes(5, off_cubes);
            let min = minimize_heuristic(&on, &off);
            check_result(&min, &on, &off);
            prop_assert!(min.cube_count() <= on.cube_count());
        }
    }
}
