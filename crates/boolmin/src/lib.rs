//! Two-level Boolean minimization for constant-time sampler synthesis.
//!
//! The DAC 2019 paper minimizes the Boolean functions that map random bits
//! to sample bits. It deliberately avoids proprietary synthesis tools: the
//! sublist functions have at most `Delta` variables, so exact minimization
//! is feasible with open algorithms. This crate provides:
//!
//! * [`Cube`] / [`Cover`] — the positional-cube algebra used by every
//!   two-level minimizer (arbitrary variable counts, bit-parallel
//!   containment and intersection, unate-recursion tautology and
//!   complement).
//! * [`minimize_exact`] — Quine-McCluskey prime generation plus essential
//!   extraction and a branch-and-bound Petrick cover, the open equivalent of
//!   `espresso -Dso -S1` the paper uses for each sublist function.
//! * [`minimize_heuristic`] — an Espresso-style EXPAND / IRREDUNDANT loop
//!   working directly on cube lists against an explicit OFF-set, used for
//!   the prior work's "simple minimization" baseline where the function has
//!   `n` (e.g. 128) variables and exact minimization is infeasible.
//! * [`Expr`] — a shared-subterm Boolean expression AST with sum-of-products
//!   construction and the constant-time `mux` combinator of Section 5.2.
//!
//! # Examples
//!
//! ```
//! use ctgauss_boolmin::{minimize_exact, TruthTable};
//!
//! // f(a, b) = a XOR b has no smaller SOP than a'b + ab'.
//! let mut tt = TruthTable::new(2);
//! tt.set_on(0b01);
//! tt.set_on(0b10);
//! let cover = minimize_exact(&tt);
//! assert_eq!(cover.cube_count(), 2);
//! assert_eq!(cover.literal_count(), 4);
//! ```
#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cover;
mod cube;
mod espresso;
mod expr;
mod qm;

pub use cover::Cover;
pub use cube::{Cube, VarState};
pub use espresso::minimize_heuristic;
pub use expr::{Expr, ExprStats};
pub use qm::{minimize_exact, TruthTable, MAX_EXACT_VARS};
