//! Covers (sums of cubes) with the unate-recursion tautology, containment
//! and complement operations two-level minimizers are built from.

use core::fmt;

use crate::{Cube, VarState};

/// A sum (OR) of product terms over a shared variable space.
///
/// # Examples
///
/// ```
/// use ctgauss_boolmin::{Cover, Cube, VarState};
///
/// // f = x0 + !x0 & x1
/// let mut f = Cover::empty(2);
/// f.push(Cube::full(2).with_var(0, VarState::One));
/// f.push(Cube::full(2).with_var(0, VarState::Zero).with_var(1, VarState::One));
/// assert!(f.evaluate(&[true, false]));
/// assert!(!f.evaluate(&[false, false]));
/// assert!(!f.is_tautology());
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct Cover {
    cubes: Vec<Cube>,
    nvars: u32,
}

impl Cover {
    /// The empty cover (constant false).
    pub fn empty(nvars: u32) -> Self {
        Cover {
            cubes: Vec::new(),
            nvars,
        }
    }

    /// A cover holding the given cubes.
    ///
    /// # Panics
    ///
    /// Panics if any cube has a different variable count.
    pub fn from_cubes(nvars: u32, cubes: Vec<Cube>) -> Self {
        for c in &cubes {
            assert_eq!(c.nvars(), nvars, "cube variable count mismatch");
        }
        Cover { cubes, nvars }
    }

    /// Number of variables of the space.
    pub fn nvars(&self) -> u32 {
        self.nvars
    }

    /// The cubes of the cover.
    pub fn cubes(&self) -> &[Cube] {
        &self.cubes
    }

    /// Number of cubes (product terms).
    pub fn cube_count(&self) -> usize {
        self.cubes.len()
    }

    /// Total number of literals across all cubes — the cost metric the
    /// paper's minimization reduces.
    pub fn literal_count(&self) -> u32 {
        self.cubes.iter().map(Cube::literal_count).sum()
    }

    /// Appends a cube.
    ///
    /// # Panics
    ///
    /// Panics on variable-count mismatch.
    pub fn push(&mut self, cube: Cube) {
        assert_eq!(cube.nvars(), self.nvars, "cube variable count mismatch");
        self.cubes.push(cube);
    }

    /// Evaluates the cover on a full assignment.
    pub fn evaluate(&self, bits: &[bool]) -> bool {
        self.cubes.iter().any(|c| c.contains_assignment(bits))
    }

    /// Sorts the cubes into the canonical [`Cube`] order. A cover is a
    /// sum, so the function is unchanged; minimizers call this so equal
    /// covers are byte-for-byte equal regardless of the (hash-iteration)
    /// order the cubes were discovered in — the property stage
    /// fingerprints and the kernel cache rely on.
    pub fn sort_canonical(&mut self) {
        self.cubes.sort_unstable();
    }

    /// Removes duplicate cubes and cubes contained in another single cube.
    pub fn remove_contained(&mut self) {
        let mut keep = vec![true; self.cubes.len()];
        for i in 0..self.cubes.len() {
            if !keep[i] {
                continue;
            }
            #[allow(clippy::needless_range_loop)] // `j` also indexes `self.cubes`
            for j in 0..self.cubes.len() {
                if i == j || !keep[j] {
                    continue;
                }
                if self.cubes[i].contains(&self.cubes[j])
                    && !(self.cubes[j].contains(&self.cubes[i]) && j < i)
                {
                    keep[j] = false;
                }
            }
        }
        let mut idx = 0;
        self.cubes.retain(|_| {
            let k = keep[idx];
            idx += 1;
            k
        });
    }

    /// The cofactor cover with respect to `var = value` (Shannon branch).
    pub fn cofactor(&self, var: u32, value: bool) -> Cover {
        let cubes = self
            .cubes
            .iter()
            .filter_map(|c| c.cofactor(var, value))
            .collect();
        Cover {
            cubes,
            nvars: self.nvars,
        }
    }

    /// Selects the most binate variable (appears in both polarities, with
    /// the highest total occurrence count), falling back to the most
    /// frequent unate variable. Returns `None` when every cube is the full
    /// cube or the cover is empty.
    fn branch_variable(&self) -> Option<u32> {
        let n = self.nvars as usize;
        let mut zeros = vec![0u32; n];
        let mut ones = vec![0u32; n];
        for c in &self.cubes {
            for v in c.support() {
                match c.var(v) {
                    VarState::Zero => zeros[v as usize] += 1,
                    VarState::One => ones[v as usize] += 1,
                    VarState::DontCare => {}
                }
            }
        }
        let mut best: Option<(bool, u32, u32)> = None; // (binate, count, var)
        for v in 0..self.nvars {
            let (z, o) = (zeros[v as usize], ones[v as usize]);
            if z + o == 0 {
                continue;
            }
            let binate = z > 0 && o > 0;
            let cand = (binate, z + o, v);
            best = match best {
                None => Some(cand),
                Some(prev) => {
                    // Prefer binate, then higher count, then lower index.
                    if (cand.0, cand.1, std::cmp::Reverse(cand.2))
                        > (prev.0, prev.1, std::cmp::Reverse(prev.2))
                    {
                        Some(cand)
                    } else {
                        Some(prev)
                    }
                }
            };
        }
        best.map(|(_, _, v)| v)
    }

    /// Whether the cover is a tautology (covers the whole space), via unate
    /// recursion.
    pub fn is_tautology(&self) -> bool {
        // Fast exits. The empty cover is constant false, never a tautology.
        if self.cubes.iter().any(|c| c.literal_count() == 0) {
            return true;
        }
        if self.cubes.is_empty() {
            return false;
        }
        // Unate test: if some variable appears in only one polarity, cubes
        // constraining it can never help cover the opposite half unless the
        // rest covers it; standard reduction: a unate cover is a tautology
        // iff it contains the full cube (checked above). Detect unateness
        // cheaply through branch_variable's binate preference.
        let Some(var) = self.branch_variable() else {
            // No constrained variable at all and no full cube: empty space.
            return false;
        };
        // If `var` is unate here, one branch simply drops cubes, so the
        // recursion still terminates (the dropped side must be covered by
        // cubes without `var`).
        self.cofactor(var, false).is_tautology() && self.cofactor(var, true).is_tautology()
    }

    /// Whether `cube` is covered by this cover (`cube ⊆ self`), via the
    /// cofactor-tautology reduction: after restricting the cover to the
    /// cube's subspace, the constrained variables no longer appear, so an
    /// ordinary tautology check over the free variables decides containment.
    pub fn covers_cube(&self, cube: &Cube) -> bool {
        let mut restricted = self.clone();
        for v in cube.support() {
            let value = cube.var(v) == VarState::One;
            restricted = restricted.cofactor(v, value);
        }
        restricted.is_tautology()
    }

    /// The complement of the cover, via Shannon recursion. Exponential in
    /// the worst case — intended for small variable counts (validation and
    /// OFF-set construction in tests).
    pub fn complement(&self) -> Cover {
        self.complement_rec(&Cube::full(self.nvars))
    }

    fn complement_rec(&self, space: &Cube) -> Cover {
        if self.cubes.iter().any(|c| c.literal_count() == 0) {
            return Cover::empty(self.nvars);
        }
        if self.cubes.is_empty() {
            return Cover::from_cubes(self.nvars, vec![space.clone()]);
        }
        let Some(var) = self.branch_variable() else {
            return Cover::from_cubes(self.nvars, vec![space.clone()]);
        };
        let mut out = Vec::new();
        for value in [false, true] {
            let sub = self.cofactor(var, value);
            let Some(subspace) = space.cofactor(var, value) else {
                continue;
            };
            let subspace =
                subspace.with_var(var, if value { VarState::One } else { VarState::Zero });
            out.extend(sub.complement_rec(&subspace).cubes);
        }
        let mut cover = Cover::from_cubes(self.nvars, out);
        cover.remove_contained();
        cover
    }

    /// Whether two covers compute the same function on every assignment
    /// where `care` (if given) is true. Exhaustive — only for small spaces.
    ///
    /// # Panics
    ///
    /// Panics if `nvars > 20`.
    pub fn equivalent_exhaustive(&self, other: &Cover, care: Option<&Cover>) -> bool {
        assert!(
            self.nvars <= 20,
            "exhaustive equivalence limited to 20 variables"
        );
        let n = self.nvars;
        for m in 0u64..(1u64 << n) {
            let bits: Vec<bool> = (0..n).map(|i| (m >> i) & 1 == 1).collect();
            if let Some(c) = care {
                if !c.evaluate(&bits) {
                    continue;
                }
            }
            if self.evaluate(&bits) != other.evaluate(&bits) {
                return false;
            }
        }
        true
    }
}

impl fmt::Debug for Cover {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Cover[{} vars; ", self.nvars)?;
        for (i, c) in self.cubes.iter().enumerate() {
            if i > 0 {
                write!(f, " + ")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn cube(pattern: &str) -> Cube {
        let mut c = Cube::full(pattern.len() as u32);
        for (i, ch) in pattern.chars().enumerate() {
            match ch {
                '0' => c.set_var(i as u32, VarState::Zero),
                '1' => c.set_var(i as u32, VarState::One),
                '-' => {}
                _ => panic!("bad pattern char {ch}"),
            }
        }
        c
    }

    fn cover(patterns: &[&str]) -> Cover {
        let n = patterns[0].len() as u32;
        Cover::from_cubes(n, patterns.iter().map(|p| cube(p)).collect())
    }

    #[test]
    fn evaluate_matches_cubes() {
        let f = cover(&["1--", "-01"]);
        assert!(f.evaluate(&[true, true, true]));
        assert!(f.evaluate(&[false, false, true]));
        assert!(!f.evaluate(&[false, true, false]));
    }

    #[test]
    fn tautology_simple_cases() {
        assert!(cover(&["---"]).is_tautology());
        assert!(cover(&["1--", "0--"]).is_tautology());
        assert!(!cover(&["1--"]).is_tautology());
        assert!(!Cover::empty(3).is_tautology());
        // x + !x&y + !x&!y
        assert!(cover(&["1-", "01", "00"]).is_tautology());
    }

    #[test]
    fn tautology_xor_decomposition() {
        // a xor b plus its complement is a tautology.
        assert!(cover(&["10", "01", "11", "00"]).is_tautology());
        assert!(!cover(&["10", "01", "11"]).is_tautology());
    }

    #[test]
    fn covers_cube_examples() {
        let f = cover(&["1--", "01-"]);
        assert!(f.covers_cube(&cube("11-")));
        assert!(f.covers_cube(&cube("010")));
        assert!(!f.covers_cube(&cube("00-")));
        // The union covers --1? 1--covers 1-1, 01- covers 011, but 001 is
        // uncovered.
        assert!(!f.covers_cube(&cube("--1")));
    }

    #[test]
    fn remove_contained_dedupes() {
        let mut f = cover(&["1--", "1-1", "1--", "-11"]);
        f.remove_contained();
        assert_eq!(f.cube_count(), 2); // "1--" and "-11" survive
        assert!(f.cubes().iter().any(|c| format!("{c:?}") == "Cube(1--)"));
    }

    #[test]
    fn complement_of_single_literal() {
        let f = cover(&["1--"]);
        let g = f.complement();
        assert_eq!(g.cube_count(), 1);
        assert!(g.evaluate(&[false, true, true]));
        assert!(!g.evaluate(&[true, false, false]));
    }

    #[test]
    fn complement_roundtrip_equivalence() {
        let f = cover(&["10-", "0-1", "11-"]);
        let g = f.complement();
        // f OR g must be a tautology, f AND g empty.
        let mut union = f.clone();
        for c in g.cubes() {
            union.push(c.clone());
        }
        assert!(union.is_tautology());
        for cf in f.cubes() {
            for cg in g.cubes() {
                assert!(!cf.intersects(cg), "{cf:?} meets {cg:?}");
            }
        }
    }

    #[test]
    fn exhaustive_equivalence() {
        let f = cover(&["10", "01"]);
        let g = cover(&["01", "10"]);
        assert!(f.equivalent_exhaustive(&g, None));
        let h = cover(&["1-", "01"]);
        assert!(!f.equivalent_exhaustive(&h, None));
        // With a care set excluding 11, f and h agree.
        let care = cover(&["0-", "-0"]);
        assert!(f.equivalent_exhaustive(&h, Some(&care)));
    }

    proptest! {
        /// Random 4-variable covers: complement really is the complement.
        #[test]
        fn prop_complement_correct(cube_specs in proptest::collection::vec(
            proptest::collection::vec(0u8..3, 4), 0..6)) {
            let cubes: Vec<Cube> = cube_specs.iter().map(|spec| {
                let mut c = Cube::full(4);
                for (i, &s) in spec.iter().enumerate() {
                    match s {
                        0 => c.set_var(i as u32, VarState::Zero),
                        1 => c.set_var(i as u32, VarState::One),
                        _ => {}
                    }
                }
                c
            }).collect();
            let f = Cover::from_cubes(4, cubes);
            let g = f.complement();
            for m in 0u32..16 {
                let bits: Vec<bool> = (0..4).map(|i| (m >> i) & 1 == 1).collect();
                prop_assert_eq!(f.evaluate(&bits), !g.evaluate(&bits));
            }
        }

        /// covers_cube agrees with brute force on 4 variables.
        #[test]
        fn prop_covers_cube_correct(cube_specs in proptest::collection::vec(
            proptest::collection::vec(0u8..3, 4), 1..5),
            probe in proptest::collection::vec(0u8..3, 4)) {
            let mk = |spec: &[u8]| {
                let mut c = Cube::full(4);
                for (i, &s) in spec.iter().enumerate() {
                    match s {
                        0 => c.set_var(i as u32, VarState::Zero),
                        1 => c.set_var(i as u32, VarState::One),
                        _ => {}
                    }
                }
                c
            };
            let f = Cover::from_cubes(4, cube_specs.iter().map(|s| mk(s)).collect());
            let probe_cube = mk(&probe);
            let brute = (0u32..16).all(|m| {
                let bits: Vec<bool> = (0..4).map(|i| (m >> i) & 1 == 1).collect();
                !probe_cube.contains_assignment(&bits) || f.evaluate(&bits)
            });
            prop_assert_eq!(f.covers_cube(&probe_cube), brute);
        }
    }
}
