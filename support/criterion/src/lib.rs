//! Offline stand-in for the `criterion` benchmark harness.
//!
//! Implements the subset of the criterion 0.5 API used by the workspace's
//! benches (`criterion_group!`, `criterion_main!`, [`Criterion`],
//! [`BenchmarkId`], [`Throughput`], benchmark groups and `Bencher::iter`)
//! with a real warm-up + median-of-samples timing loop. See
//! `support/README.md` for the differences from upstream.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Top-level benchmark configuration, mirroring `criterion::Criterion`.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 100,
            measurement_time: Duration::from_secs(5),
            warm_up_time: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples collected per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Sets the wall-clock budget for the measurement phase.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Sets the wall-clock budget for the warm-up phase.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            config: self,
        }
    }
}

/// A benchmark identifier: a function name plus a parameter value,
/// rendered as `function/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and a parameter.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            full: format!("{function}/{parameter}"),
        }
    }

    /// Builds an id from a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            full: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { full: s.to_owned() }
    }
}

/// Units processed per benchmark iteration, used to derive a rate.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements (samples, signatures, ...) per iteration.
    Elements(u64),
    /// Bytes per iteration.
    Bytes(u64),
}

/// A group of related benchmarks sharing a name prefix and throughput.
#[derive(Debug)]
pub struct BenchmarkGroup<'c> {
    name: String,
    throughput: Option<Throughput>,
    config: &'c Criterion,
}

impl BenchmarkGroup<'_> {
    /// Declares how many units each iteration of subsequent benchmarks
    /// processes.
    pub fn throughput(&mut self, t: Throughput) {
        self.throughput = Some(t);
    }

    /// Times `f` and prints one result line.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run_one(id.into(), &mut f);
        self
    }

    /// Times `f` with an explicit input and prints one result line.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run_one(id.into(), &mut |b: &mut Bencher| f(b, input));
        self
    }

    /// Ends the group (upstream parity; all reporting is per-benchmark).
    pub fn finish(self) {}

    fn run_one(&mut self, id: BenchmarkId, f: &mut dyn FnMut(&mut Bencher)) {
        let mut bencher = Bencher {
            config: self.config.clone(),
            median_ns: 0.0,
            samples: 0,
        };
        f(&mut bencher);
        let label = format!("{}/{}", self.name, id.full);
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) if bencher.median_ns > 0.0 => {
                format!("  ({:.3e} elem/s)", n as f64 / (bencher.median_ns * 1e-9))
            }
            Some(Throughput::Bytes(n)) if bencher.median_ns > 0.0 => {
                format!(
                    "  ({:.1} MiB/s)",
                    n as f64 / (bencher.median_ns * 1e-9) / (1024.0 * 1024.0)
                )
            }
            _ => String::new(),
        };
        println!(
            "{label:<52} {:>14.1} ns/iter  [{} samples]{rate}",
            bencher.median_ns, bencher.samples
        );
    }
}

/// Passed to benchmark closures; [`Bencher::iter`] does the timing.
#[derive(Debug)]
pub struct Bencher {
    config: Criterion,
    median_ns: f64,
    samples: usize,
}

impl Bencher {
    /// Runs `f` repeatedly: a warm-up phase (which also calibrates the
    /// batch size), then `sample_size` timed samples within the
    /// measurement-time budget. Records the median ns-per-iteration.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm up and estimate the cost of one iteration.
        let warmup_deadline = Instant::now() + self.config.warm_up_time;
        let mut warmup_iters: u64 = 0;
        let warmup_start = Instant::now();
        loop {
            std::hint::black_box(f());
            warmup_iters += 1;
            if Instant::now() >= warmup_deadline {
                break;
            }
        }
        let est_ns = (warmup_start.elapsed().as_nanos() as f64 / warmup_iters as f64).max(1.0);

        // Pick a batch size so one sample costs roughly
        // measurement_time / sample_size.
        let budget_ns = self.config.measurement_time.as_nanos() as f64;
        let per_sample_ns = budget_ns / self.config.sample_size as f64;
        let batch = ((per_sample_ns / est_ns).floor() as u64).max(1);

        let mut samples_ns: Vec<f64> = Vec::with_capacity(self.config.sample_size);
        let deadline = Instant::now() + self.config.measurement_time;
        for _ in 0..self.config.sample_size {
            let start = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(f());
            }
            samples_ns.push(start.elapsed().as_nanos() as f64 / batch as f64);
            if Instant::now() >= deadline && samples_ns.len() >= 2 {
                break;
            }
        }
        samples_ns.sort_by(|a, b| a.partial_cmp(b).expect("time is finite"));
        self.median_ns = samples_ns[samples_ns.len() / 2];
        self.samples = samples_ns.len();
    }
}

/// Defines a benchmark group function, in either the plain or the
/// `name = ...; config = ...; targets = ...` form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            $(
                {
                    let mut criterion = $config;
                    $target(&mut criterion);
                }
            )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Defines `main` for a bench binary built with `harness = false`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
