//! Offline stand-in for the `proptest` property-testing framework.
//!
//! Implements the subset of the proptest 1.x API used by the workspace's
//! tests: the [`proptest!`] macro, `prop_assert!`/`prop_assert_eq!`/
//! `prop_assume!`, [`ProptestConfig::with_cases`], the [`Strategy`] trait
//! with `prop_map`/`prop_recursive`/`boxed`, [`any`], [`Just`],
//! [`prop_oneof!`], integer-range strategies (half-open and inclusive),
//! tuple strategies up to seven elements, and [`collection::vec`]. Cases
//! are driven by a deterministic SplitMix64 stream seeded from the test
//! name, so runs are reproducible; there is no shrinking (see
//! `support/README.md`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::marker::PhantomData;
use std::ops::Range;
use std::rc::Rc;

/// Everything a test file needs, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        BoxedStrategy, Just, ProptestConfig, Strategy,
    };
}

/// Per-`proptest!` block configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases generated per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A config running `cases` random cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Deterministic SplitMix64 driving value generation.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the stream from a test name and case index (FNV-1a over the
    /// name, mixed with the index) so every property gets an independent,
    /// reproducible sequence.
    pub fn for_case(test_name: &str, case: u32) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng {
            state: h ^ (u64::from(case).wrapping_mul(0x9e37_79b9_7f4a_7c15)),
        }
    }

    /// Next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// A generator of random values, mirroring `proptest::strategy::Strategy`.
pub trait Strategy {
    /// The type of value this strategy generates.
    type Value;

    /// Generates one value from `rng`.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Erases the strategy type (cheap: reference-counted).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: Rc::new(self),
        }
    }

    /// Builds a recursive strategy: `recurse` receives a strategy for the
    /// inner (smaller) values and returns the strategy for one more level.
    /// Depth is bounded by `depth`; `_desired_size` and `_expected_branch`
    /// are accepted for upstream signature parity and ignored.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let leaf = self.boxed();
        let mut current = leaf.clone();
        for _ in 0..depth {
            let deeper = recurse(current).boxed();
            // Mix the leaf back in so generated structures vary in depth.
            current = Union {
                options: vec![leaf.clone(), deeper],
            }
            .boxed();
        }
        current
    }
}

/// The strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// A type-erased, cheaply clonable strategy.
#[derive(Debug)]
pub struct BoxedStrategy<T> {
    inner: Rc<dyn Strategy<Value = T>>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            inner: Rc::clone(&self.inner),
        }
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.inner.generate(rng)
    }
}

impl<T> std::fmt::Debug for dyn Strategy<Value = T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Strategy")
    }
}

/// Uniform choice among strategies of one value type; built by
/// [`prop_oneof!`].
#[derive(Debug, Clone)]
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// A union choosing uniformly among `options`.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = (rng.next_u64() % self.options.len() as u64) as usize;
        self.options[idx].generate(rng)
    }
}

/// Types with a canonical full-range strategy, mirroring
/// `proptest::arbitrary::Arbitrary` for the primitives we need.
pub trait ArbitraryValue {
    /// Generates a uniform value of the type.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {
        $(
            impl ArbitraryValue for $t {
                #[allow(clippy::cast_possible_truncation)]
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*
    };
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl ArbitraryValue for u128 {
    fn arbitrary(rng: &mut TestRng) -> u128 {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl ArbitraryValue for i128 {
    fn arbitrary(rng: &mut TestRng) -> i128 {
        u128::arbitrary(rng) as i128
    }
}

impl ArbitraryValue for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone)]
pub struct Any<T> {
    _marker: PhantomData<T>,
}

impl<T: ArbitraryValue> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// A full-range strategy for a primitive type, mirroring `proptest::prelude::any`.
pub fn any<T: ArbitraryValue>() -> Any<T> {
    Any {
        _marker: PhantomData,
    }
}

/// A strategy that always yields a clone of one value, mirroring
/// `proptest::strategy::Just`.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {
        $(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = self.end.abs_diff(self.start) as u64;
                    let offset = rng.next_u64() % span;
                    // In-range by construction: offset < end - start.
                    self.start.wrapping_add(offset as $t)
                }
            }
        )*
    };
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_inclusive_strategy {
    ($($t:ty),*) => {
        $(
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start() <= self.end(), "empty range strategy");
                    let span = self.end().abs_diff(*self.start()) as u64;
                    // A full-width inclusive range has span + 1 == 0 in
                    // u64, so the modulus degenerates to the raw draw.
                    let offset = match span.checked_add(1) {
                        Some(values) => rng.next_u64() % values,
                        None => rng.next_u64(),
                    };
                    self.start().wrapping_add(offset as $t)
                }
            }
        )*
    };
}

impl_range_inclusive_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident $idx:tt),+);)*) => {
        $(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*
    };
}

impl_tuple_strategy! {
    (A 0, B 1);
    (A 0, B 1, C 2);
    (A 0, B 1, C 2, D 3);
    (A 0, B 1, C 2, D 3, E 4);
    (A 0, B 1, C 2, D 3, E 4, F 5);
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6);
}

/// Element-count specification for [`collection::vec`]: an exact length or
/// a half-open range of lengths.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use super::{SizeRange, Strategy, TestRng};

    /// The strategy returned by [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates `Vec`s whose length is drawn from `size` and whose
    /// elements are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Uniform choice among strategies producing one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

/// Asserts a property-test condition, reporting the failing case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Asserts equality inside a property test, reporting the failing case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Asserts inequality inside a property test, reporting the failing case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Rejects the current case (moves on to the next generated case). Unlike
/// upstream, a rejected case is not regenerated, so heavy use reduces the
/// effective case count.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            continue;
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            continue;
        }
    };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that runs `body` for `config.cases` generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`]: expands one test item at a time.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (cfg = $cfg:expr;) => {};
    (cfg = $cfg:expr;
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            for case in 0..config.cases {
                let mut rng = $crate::TestRng::for_case(stringify!($name), case);
                $(let $arg = $crate::Strategy::generate(&($strategy), &mut rng);)+
                $body
            }
        }
        $crate::__proptest_items! { cfg = $cfg; $($rest)* }
    };
}
