//! Using the constant-time sampler as an LWE noise source — the original
//! motivation for discrete Gaussian sampling in lattice cryptography
//! (Section 1 of the paper).
//!
//! Builds a toy LWE instance `b = A s + e mod q` with Gaussian error `e`,
//! then shows that decryption-style inner products stay within the noise
//! budget, and validates the error distribution with a chi-square test.
//!
//! ```sh
//! cargo run --release --bin lwe_noise
//! ```

use ctgauss_core::SamplerBuilder;
use ctgauss_prng::{ChaChaRng, RandomSource};
use ctgauss_stats::{chi_square_test, discrete_gaussian_pmf, Histogram};

const Q: i64 = 12289;
const DIM: usize = 64;

fn main() {
    // sigma = 3.2 is a common LWE noise width (e.g. in FHE parameter sets).
    let sampler = SamplerBuilder::new("3.2", 64).build().expect("builds");
    let mut rng = ChaChaRng::from_u64_seed(0x1_3E);

    // Secret and public matrix (uniform), error from the Gaussian.
    let secret: Vec<i64> = (0..DIM)
        .map(|_| i64::from(rng.next_u32() % 3) - 1)
        .collect();
    let rows = 256;
    let mut stream = sampler.stream();
    let mut a_rows = Vec::with_capacity(rows);
    let mut b_vals = Vec::with_capacity(rows);
    let mut errors = Vec::with_capacity(rows);
    for _ in 0..rows {
        let a: Vec<i64> = (0..DIM).map(|_| i64::from(rng.next_u32()) % Q).collect();
        let e = i64::from(stream.next(&mut rng));
        let dot: i64 = a.iter().zip(&secret).map(|(x, s)| x * s % Q).sum::<i64>() % Q;
        b_vals.push((dot + e).rem_euclid(Q));
        a_rows.push(a);
        errors.push(e);
    }
    println!("built {rows} LWE samples over Z_{Q}^{DIM} with sigma = 3.2 noise");

    // A holder of the secret recovers each error term exactly.
    let recovered: Vec<i64> = (0..rows)
        .map(|i| {
            let dot: i64 = a_rows[i]
                .iter()
                .zip(&secret)
                .map(|(x, s)| x * s % Q)
                .sum::<i64>()
                % Q;
            let mut e = (b_vals[i] - dot).rem_euclid(Q);
            if e > Q / 2 {
                e -= Q;
            }
            e
        })
        .collect();
    assert_eq!(recovered, errors);
    println!("secret holder recovers all error terms exactly");
    let max_err = errors.iter().map(|e| e.abs()).max().unwrap();
    println!("max |error| = {max_err} (tail cut at 13 * 3.2 = 41)");

    // Validate the noise distribution at scale.
    let mut hist = Histogram::new(-41, 41);
    let big = 200_000;
    for _ in 0..big {
        hist.add(stream.next(&mut rng));
    }
    let pmf = discrete_gaussian_pmf(3.2, 41);
    let gof = chi_square_test(&hist, &pmf);
    println!(
        "\nnoise distribution over {big} draws: chi2 = {:.1}, dof = {}, p = {:.3} ({})",
        gof.statistic,
        gof.dof,
        gof.p_value,
        if gof.rejects_at(0.001) {
            "REJECTED"
        } else {
            "consistent with D_sigma"
        }
    );
    assert!(!gof.rejects_at(0.001));
}
