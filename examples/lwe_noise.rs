//! Using the constant-time sampler as an LWE noise source — the original
//! motivation for discrete Gaussian sampling in lattice cryptography
//! (Section 1 of the paper) — driven the way a real encryption service
//! would drive it: many independent callers each asking the shared v2
//! pool for a *handful* of noise samples at a time.
//!
//! Each of 256 toy encryptions submits its own tiny request (one error
//! term per LWE row), the pool's cross-request coalescer packs those
//! tiny requests into full kernel batches, and the example prints the
//! dispatch fill ratio to show the batches actually ran full. The noise
//! profile is hot-loaded into the running pool through the profile
//! registry — with `CTGAUSS_CACHE_DIR` pointing at a warmed kernel
//! cache, that load skips synthesis entirely. The error distribution is
//! then validated with a chi-square test, and the profile is retired to
//! show the registry's end-of-life path.
//!
//! ```sh
//! cargo run --release --bin lwe_noise
//! # with a warm kernel cache (second run hot-loads the prebuilt kernel):
//! CTGAUSS_CACHE_DIR=/tmp/ctgauss-cache cargo run --release --bin lwe_noise
//! ```

use ctgauss_core::SamplerSpec;
use ctgauss_pool::{CoalesceConfig, LaneWidth, Pool, PoolError, SampleRequest};
use ctgauss_prng::{ChaChaRng, RandomSource};
use ctgauss_stats::{chi_square_test, discrete_gaussian_pmf, Histogram};

const Q: i64 = 12289;
const DIM: usize = 64;

fn main() {
    // A coalescing pool booted with one stock profile: the service
    // starts first, workload-specific noise profiles arrive at runtime
    // through the registry.
    let mut builder = Pool::builder()
        .threads(2)
        .width(LaneWidth::W1)
        .queue_capacity(1024)
        .seed_u64(0x13E)
        .coalesce(CoalesceConfig {
            steal: false,
            ..CoalesceConfig::default()
        });
    let _boot = builder
        .profile(&SamplerSpec::new("2", 16))
        .expect("boot profile builds");
    let pool = builder.spawn();

    // sigma = 3.2 is a common LWE noise width (e.g. in FHE parameter
    // sets). Hot-loaded through the process-default kernel cache: with
    // CTGAUSS_CACHE_DIR set and warm, this is a file load, not a
    // synthesis run.
    let start = std::time::Instant::now();
    let profile = pool
        .add_profile(&SamplerSpec::new("3.2", 64))
        .expect("noise profile builds");
    println!(
        "hot-loaded sigma = 3.2 profile into the running pool in {:.2?}",
        start.elapsed()
    );

    let mut rng = ChaChaRng::from_u64_seed(0x1_3E);
    let secret: Vec<i64> = (0..DIM)
        .map(|_| i64::from(rng.next_u32() % 3) - 1)
        .collect();

    // 256 independent "encryptions", each submitting its own one-sample
    // noise request — the tiny-request shape that, uncoalesced, would
    // run one 64-slot kernel batch per single sample. Submissions are
    // pipelined (all tickets in flight at once) so the coalescer has
    // cross-request material to gang up.
    let rows = 256;
    let tickets: Vec<_> = (0..rows)
        .map(|_| {
            pool.submit(SampleRequest { profile, count: 1 })
                .expect("pool accepts")
        })
        .collect();
    let errors: Vec<i64> = tickets
        .into_iter()
        .map(|t| i64::from(t.wait().expect("noise served").samples[0]))
        .collect();

    // Build b = A s + e mod q from the pooled noise.
    let mut a_rows = Vec::with_capacity(rows);
    let mut b_vals = Vec::with_capacity(rows);
    for &e in &errors {
        let a: Vec<i64> = (0..DIM).map(|_| i64::from(rng.next_u32()) % Q).collect();
        let dot: i64 = a.iter().zip(&secret).map(|(x, s)| x * s % Q).sum::<i64>() % Q;
        b_vals.push((dot + e).rem_euclid(Q));
        a_rows.push(a);
    }
    println!("built {rows} LWE samples over Z_{Q}^{DIM} with sigma = 3.2 noise");

    // A holder of the secret recovers each error term exactly.
    let recovered: Vec<i64> = (0..rows)
        .map(|i| {
            let dot: i64 = a_rows[i]
                .iter()
                .zip(&secret)
                .map(|(x, s)| x * s % Q)
                .sum::<i64>()
                % Q;
            let mut e = (b_vals[i] - dot).rem_euclid(Q);
            if e > Q / 2 {
                e -= Q;
            }
            e
        })
        .collect();
    assert_eq!(recovered, errors);
    println!("secret holder recovers all error terms exactly");
    let max_err = errors.iter().map(|e| e.abs()).max().unwrap();
    println!("max |error| = {max_err} (tail cut at 13 * 3.2 = 41)");

    // The coalescer's receipt: 256 one-sample requests, far fewer
    // kernel batches. dispatch_fill_ratio counts only fresh draws
    // someone waited on, so uncoalesced this workload would sit at
    // 1/64 ≈ 0.016.
    let metrics = pool.metrics();
    let fill = metrics
        .gauge("pool", "dispatch_fill_ratio")
        .unwrap_or_default();
    let gangs = metrics.counter("pool", "gangs_flushed").unwrap_or(0);
    println!(
        "coalescer packed {rows} tiny requests into {gangs} gangs, dispatch fill ratio {fill:.3}"
    );

    // Validate the noise distribution at scale (bulk requests this
    // time — the pool serves both shapes from the same draw streams).
    let mut hist = Histogram::new(-41, 41);
    let big = 200_000;
    let bulk: Vec<_> = (0..big / 512)
        .map(|_| {
            pool.submit(SampleRequest {
                profile,
                count: 512,
            })
            .expect("pool accepts")
        })
        .collect();
    for ticket in bulk {
        for &s in &ticket.wait().expect("bulk served").samples {
            hist.add(s);
        }
    }
    let pmf = discrete_gaussian_pmf(3.2, 41);
    let gof = chi_square_test(&hist, &pmf);
    println!(
        "\nnoise distribution over {} draws: chi2 = {:.1}, dof = {}, p = {:.3} ({})",
        (big / 512) * 512,
        gof.statistic,
        gof.dof,
        gof.p_value,
        if gof.rejects_at(0.001) {
            "REJECTED"
        } else {
            "consistent with D_sigma"
        }
    );
    assert!(!gof.rejects_at(0.001));

    // End of life: retire the profile. In-flight work is done; new
    // submissions are refused while the pool keeps serving any other
    // registered profile.
    pool.retire_profile(profile).expect("profile was live");
    assert!(matches!(
        pool.submit(SampleRequest { profile, count: 1 }),
        Err(PoolError::UnknownProfile)
    ));
    println!("profile retired: new submissions refused, slot index stays reserved");
}
