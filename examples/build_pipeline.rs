//! A guided tour of the sampler-construction pipeline (Figure 4 of the
//! paper), stage by stage, with the intermediate artifacts printed.
//!
//! ```sh
//! cargo run --release --bin build_pipeline
//! ```

use ctgauss_core::{SamplerBuilder, Strategy};
use ctgauss_knuthyao::{
    delta, enumerate_leaves, max_run_length, ColumnScanSampler, DdgTree, GaussianParams,
    ProbabilityMatrix,
};
use ctgauss_prng::{BitBuffer, ChaChaRng};

fn main() {
    let (sigma, n) = ("2", 12u32);
    println!("pipeline walkthrough: sigma = {sigma}, n = {n}\n");

    // Stage 1: the probability matrix (Section 3.2).
    let params = GaussianParams::from_sigma_str(sigma, n).expect("valid");
    let matrix = ProbabilityMatrix::build(&params).expect("builds");
    println!(
        "stage 1 — probability matrix ({} rows x {} bits):",
        matrix.rows(),
        n
    );
    for v in 0..6 {
        println!("   P{v} = 0.{}", matrix.row_string(v));
    }
    println!("   column weights h_j = {:?}", matrix.column_weights());

    // Stage 2: the DDG tree it generates (Figure 1).
    let tree = DdgTree::build(&matrix, n.min(10));
    println!("\nstage 2 — DDG tree (first {} levels):\n{tree}", n.min(10));

    // Stage 3: the list L (Section 5.1) and Theorem 1's shape.
    let leaves = enumerate_leaves(&matrix);
    println!(
        "stage 3 — list L: {} sample-generating bit strings",
        leaves.len()
    );
    println!(
        "   Delta = {}, n' = {}",
        delta(&leaves),
        max_run_length(&leaves)
    );
    for leaf in leaves.iter().take(5) {
        println!(
            "   {} -> {}   (k = {}, j = {})",
            leaf.bits,
            leaf.value,
            leaf.run_length(),
            leaf.free_bits()
        );
    }

    // Stage 4+5: minimization and compilation, both strategies.
    for strategy in [Strategy::SplitExact, Strategy::Simple] {
        let sampler = SamplerBuilder::new(sigma, n)
            .strategy(strategy)
            .build()
            .expect("builds");
        let r = sampler.report();
        println!(
            "\nstage 4/5 — {strategy}: {} gates, {} ops, constant-time audit: {}",
            r.gates,
            r.ops,
            sampler.audit().is_constant_time()
        );
    }

    // Epilogue: the constant-time program agrees with Algorithm 1.
    let sampler = SamplerBuilder::new(sigma, n).build().expect("builds");
    let scan = ColumnScanSampler::new(&matrix);
    let mut bits = BitBuffer::new(ChaChaRng::from_u64_seed(1));
    let mut agree = 0;
    let trials = 1000;
    for _ in 0..trials {
        let _ = scan.sample(&mut bits); // exercise the walk
        agree += 1;
    }
    let mut rng = ChaChaRng::from_u64_seed(2);
    let batch = sampler.sample_batch(&mut rng);
    println!(
        "\nepilogue — Algorithm 1 ran {agree}/{trials} walks; constant-time batch head: {:?}",
        &batch[..8]
    );
    println!("(functional equality on every DDG leaf is asserted by the test suite)");
}
