//! `rpc_server` — the TCP front door for `ctgauss-pool`.
//!
//! Binds a `ctgauss-rpc-server` on `--addr` (default `127.0.0.1:0`,
//! i.e. an ephemeral port), serves the standard profile table
//! (0 = sigma 2, 1 = sigma 6.15543, 2 = sigma 1.5, all n = 24), and
//! prints the bound address on stdout as the first line so scripts can
//! connect:
//!
//! ```text
//! # Terminal 1: serve on an ephemeral port with 4 workers.
//! rpc_server --threads 4 --width 4 --seed 7
//! listening 127.0.0.1:44321
//! # Terminal 2: drive it with the harness client (see rpc_smoke).
//! ```
//!
//! The process serves until stdin reads a line saying `quit` (or
//! closes), then drains: new connections and requests are refused with
//! retryable errors, every already-accepted request is waited to an
//! outcome and answered, and the final `DrainReport` is printed. Exit
//! is non-zero if the drain lost an accepted request — the zero-loss
//! guarantee is checked on every shutdown, not just in tests.
//!
//! `--chaos [SPEC]` arms the pool's fault plan (inline spec, else
//! `CTGAUSS_FAULTS`, else the built-in default) so the overload envelope
//! can be exercised against dying and stalling workers.

use std::io::BufRead;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

use ctgauss_pool::{FaultPlan, LaneWidth, Pool, FAULTS_ENV};
use ctgauss_rpc_client::harness::build_standard_profiles;
use ctgauss_rpc_server::{Server, ServerConfig};

/// The chaos plan used when `--chaos` is given without a spec and
/// `CTGAUSS_FAULTS` is unset. Same default as `pool_server`.
const DEFAULT_CHAOS_SPEC: &str = "panic@w0.req40;stall@w1.req120:25ms;panic@w1.req260;cacheload:1";

fn usage() -> ExitCode {
    eprintln!(
        "usage: rpc_server [--addr HOST:PORT] [--threads T] [--width 1|2|4|8] [--seed S]\n\
                        [--profiles K] [--conn-inflight N] [--global-inflight N]\n\
                        [--default-deadline MS] [--max-deadline MS] [--chaos [SPEC]]\n\
       serves until stdin reads `quit` (or closes), then drains and reports;\n\
       chaos SPEC as in pool_server, defaulting to ${FAULTS_ENV} or a built-in plan"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut addr = String::from("127.0.0.1:0");
    let mut threads = 4usize;
    let mut width = LaneWidth::W4;
    let mut seed = 7u64;
    let mut profiles_k = 3usize;
    let mut cfg = ServerConfig::default();
    let mut chaos = false;
    let mut chaos_spec: Option<String> = None;
    let mut it = args.iter().peekable();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--addr" => addr = it.next().expect("--addr").clone(),
            "--threads" => threads = it.next().and_then(|v| v.parse().ok()).expect("--threads"),
            "--width" => {
                width = match it.next().map(String::as_str) {
                    Some("1") => LaneWidth::W1,
                    Some("2") => LaneWidth::W2,
                    Some("4") => LaneWidth::W4,
                    Some("8") => LaneWidth::W8,
                    _ => return usage(),
                }
            }
            "--seed" => seed = it.next().and_then(|v| v.parse().ok()).expect("--seed"),
            "--profiles" => {
                profiles_k = it.next().and_then(|v| v.parse().ok()).expect("--profiles");
            }
            "--conn-inflight" => {
                cfg.conn_inflight = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--conn-inflight");
            }
            "--global-inflight" => {
                cfg.global_inflight = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--global-inflight");
            }
            "--default-deadline" => {
                cfg.default_deadline = Duration::from_millis(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .expect("--default-deadline"),
                );
            }
            "--max-deadline" => {
                cfg.max_deadline = Duration::from_millis(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .expect("--max-deadline"),
                );
            }
            "--chaos" => {
                chaos = true;
                if let Some(next) = it.peek() {
                    if !next.starts_with("--") {
                        chaos_spec = it.next().cloned();
                    }
                }
            }
            _ => return usage(),
        }
    }

    let faults: Option<FaultPlan> = if chaos {
        let plan = match &chaos_spec {
            Some(spec) => match FaultPlan::parse(spec) {
                Ok(plan) => plan,
                Err(error) => {
                    eprintln!("rpc_server: --chaos spec: {error}");
                    return ExitCode::from(2);
                }
            },
            None => match FaultPlan::from_env() {
                Ok(Some(plan)) => plan,
                Ok(None) => {
                    FaultPlan::parse(DEFAULT_CHAOS_SPEC).expect("built-in chaos spec parses")
                }
                Err(error) => {
                    eprintln!("rpc_server: {FAULTS_ENV}: {error}");
                    return ExitCode::from(2);
                }
            },
        };
        // Arm cache-load faults before the kernels are built, so the
        // fallback-to-direct-synthesis path is what actually serves.
        plan.arm_cache_load_failures();
        eprintln!(
            "rpc_server: chaos armed ({} worker fault(s), {} cache-load failure(s))",
            plan.worker_faults().len(),
            plan.cache_load_failures()
        );
        Some(plan)
    } else {
        None
    };

    let shared = build_standard_profiles(profiles_k);
    let mut builder = Pool::builder()
        .threads(threads)
        .width(width)
        .queue_capacity(1024)
        .seed_u64(seed);
    if let Some(plan) = &faults {
        builder = builder.faults(plan.clone());
    }
    let profile_ids: Vec<_> = shared
        .iter()
        .map(|s| builder.shared_profile(Arc::clone(s)))
        .collect();
    let pool = Arc::new(builder.spawn());

    let server = match Server::bind(addr.as_str(), pool, profile_ids, cfg) {
        Ok(server) => server,
        Err(error) => {
            eprintln!("rpc_server: bind {addr}: {error}");
            return ExitCode::FAILURE;
        }
    };
    // First stdout line is the contract with scripts: the bound address.
    println!("listening {}", server.local_addr());
    eprintln!(
        "rpc_server: serving {threads} worker(s), width {width:?}, seed {seed}; \
         send `quit` on stdin to drain"
    );

    let stdin = std::io::stdin();
    for line in stdin.lock().lines() {
        let Ok(line) = line else { break };
        match line.trim() {
            "quit" | "drain" | "exit" => break,
            "" => {}
            other => eprintln!("rpc_server: unknown command {other:?} (try `quit`)"),
        }
    }

    let report = server.shutdown();
    eprintln!(
        "rpc_server: drained: accepted={} responses={} pool_errors={} \
         deadline_expired={} connections={}",
        report.accepted,
        report.responses,
        report.pool_errors,
        report.deadline_expired,
        report.connections
    );
    if report.lossless() {
        println!("drain lossless");
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "rpc_server: DRAIN LOST REQUESTS: accepted={} resolved={}",
            report.accepted, report.resolved
        );
        ExitCode::FAILURE
    }
}
