//! End-to-end Falcon-style signing with the constant-time sampler — the
//! paper's case study as a runnable demo.
//!
//! ```sh
//! cargo run --release --bin falcon_sign
//! ```

use ctgauss_falcon::base::KnuthYaoCtBase;
use ctgauss_falcon::codec::{decode_signature, encode_public_key, encode_signature};
use ctgauss_falcon::{FalconParams, SecretKey};
use ctgauss_prng::ChaChaRng;
use std::time::Instant;

fn main() {
    let params = FalconParams::level1(); // N = 256 (the paper's Level 1)
    println!("Falcon-style signature, N = {}, q = 12289", params.n());

    let mut rng = ChaChaRng::from_u64_seed(0xFA1C0);
    let t = Instant::now();
    let sk = SecretKey::generate(params, &mut rng).expect("key generation");
    println!("keygen: {:?}", t.elapsed());
    println!(
        "  NTRU identity f*G - g*F = q holds exactly: {}",
        sk.basis().verify_ntru_equation()
    );
    let sigmas = sk.tree().leaf_sigmas();
    let (lo, hi) = sigmas
        .iter()
        .fold((f64::MAX, f64::MIN), |(lo, hi), &s| (lo.min(s), hi.max(s)));
    println!("  ffLDL leaf sigmas in [{lo:.3}, {hi:.3}] (base sampler sigma = 2)");

    let pk_bytes = encode_public_key(sk.public_key().h());
    println!("  public key: {} bytes", pk_bytes.len());

    // Sign with the paper's constant-time bitsliced sampler as the base.
    let mut base = KnuthYaoCtBase::new(7);
    let message = b"Pushing the speed limit of constant-time discrete Gaussian sampling";
    let t = Instant::now();
    let sig = sk.sign(message, &mut base, &mut rng).expect("signing");
    println!("\nsign: {:?}", t.elapsed());

    let sig_bytes = encode_signature(&sig).expect("encodes");
    println!(
        "  signature: {} bytes (nonce 40 + compressed s1)",
        sig_bytes.len()
    );

    // Round-trip through the wire format and verify.
    let decoded = decode_signature(&sig_bytes, params.n()).expect("decodes");
    assert_eq!(decoded, sig);
    let t = Instant::now();
    let ok = sk.public_key().verify(message, &decoded);
    println!(
        "verify: {:?} -> {}",
        t.elapsed(),
        if ok { "ACCEPT" } else { "REJECT" }
    );
    assert!(ok);

    // Tampering must fail.
    let mut bad = decoded;
    bad.s1[0] = bad.s1[0].wrapping_add(1);
    assert!(!sk.public_key().verify(message, &bad));
    println!("tampered signature -> REJECT (as expected)");
}
