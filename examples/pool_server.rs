//! `pool_server` — a stdin/stdout load generator for `ctgauss-pool`.
//!
//! Line protocol: one request per line, `<profile> <count>` (or just
//! `<count>` for profile 0); blank lines and `#` comments are skipped.
//! Profiles index a fixed table: 0 = sigma 2, 1 = sigma 6.15543,
//! 2 = sigma 1.5 (all n = 24, the Figure 5 configurations).
//!
//! ```text
//! # Generate a 10k-request trace, then replay it on 4 workers:
//! pool_server gen 10000 --seed 1 > trace.txt
//! pool_server run --threads 4 --verify < trace.txt
//! # Thread-scaling sweep over the same trace:
//! pool_server run --sweep 1,2,4,8 < trace.txt
//! ```
//!
//! `run` reports p50/p99 request latency and samples/sec per thread
//! count. `--verify` replays the trace twice and exits non-zero if any
//! response is dropped, duplicated, mis-sized, or fails to replay
//! bit-identically.

use std::io::{BufRead, Write};
use std::process::ExitCode;
use std::sync::Arc;
use std::time::{Duration, Instant};

use ctgauss_core::{CtSampler, SamplerSpec};
use ctgauss_pool::{LaneWidth, Pool, SampleRequest};
use ctgauss_prng::{RandomSource, SplitMix64};

/// The registered sigma profiles, indexed by the trace's profile field.
const PROFILES: [(&str, u32); 3] = [("2", 24), ("6.15543", 24), ("1.5", 24)];

fn usage() -> ExitCode {
    eprintln!(
        "usage: pool_server gen <n> [--seed S] [--profiles K] [--max-count C]\n\
                pool_server run [--threads T] [--width 1|2|4|8] [--seed S]\n\
                             [--sweep T1,T2,..] [--verify] < trace"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("gen") => generate(&args[1..]),
        Some("run") => run(&args[1..]),
        // Bare flags mean `run` (so `pool_server --threads 4 < trace` works).
        Some(flag) if flag.starts_with("--") => run(&args),
        None => run(&args),
        Some(_) => usage(),
    }
}

/// Emits a reproducible synthetic trace: mixed small/bulk requests with
/// a long-tail size distribution, like an LWE-ish workload would issue.
fn generate(args: &[String]) -> ExitCode {
    let mut n: Option<usize> = None;
    let mut seed = 1u64;
    let mut profiles = 1usize;
    let mut max_count = 4096usize;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--seed" => seed = it.next().and_then(|v| v.parse().ok()).expect("--seed"),
            "--profiles" => {
                profiles = it.next().and_then(|v| v.parse().ok()).expect("--profiles");
                assert!(
                    (1..=PROFILES.len()).contains(&profiles),
                    "--profiles must be 1..={}",
                    PROFILES.len()
                );
            }
            "--max-count" => {
                max_count = it.next().and_then(|v| v.parse().ok()).expect("--max-count");
            }
            v if n.is_none() && !v.starts_with("--") => n = v.parse().ok(),
            _ => return usage(),
        }
    }
    let Some(n) = n else { return usage() };
    assert!(max_count >= 1, "--max-count must be at least 1");
    let mut rng = SplitMix64::new(seed);
    let stdout = std::io::stdout();
    let mut out = std::io::BufWriter::new(stdout.lock());
    writeln!(out, "# pool_server trace: {n} requests, seed {seed}").expect("stdout");
    for _ in 0..n {
        let profile = rng.next_u64() as usize % profiles;
        // Long-tail sizes: mostly small draws, occasional bulk buffers.
        // `--max-count` is a hard cap on every request size: the bulk arm
        // draws uniformly from 512..max_count, and all arms clamp to it.
        let count = match rng.next_u64() % 10 {
            0..=5 => 1 + rng.next_u64() as usize % 64,
            6..=8 => 64 + rng.next_u64() as usize % 512,
            _ => 512 + rng.next_u64() as usize % max_count.saturating_sub(512).max(1),
        }
        .min(max_count);
        writeln!(out, "{profile} {count}").expect("stdout");
    }
    ExitCode::SUCCESS
}

#[derive(Clone, Copy)]
struct TraceLine {
    profile: usize,
    count: usize,
}

fn parse_trace(reader: impl BufRead) -> Vec<TraceLine> {
    let mut trace = Vec::new();
    for (lineno, line) in reader.lines().enumerate() {
        let line = line.expect("read trace line");
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut fields = line.split_whitespace();
        let first: usize = fields
            .next()
            .and_then(|f| f.parse().ok())
            .unwrap_or_else(|| panic!("trace line {}: expected numbers", lineno + 1));
        let entry = match fields.next() {
            Some(second) => TraceLine {
                profile: first,
                count: second
                    .parse()
                    .unwrap_or_else(|_| panic!("trace line {}: bad count", lineno + 1)),
            },
            None => TraceLine {
                profile: 0,
                count: first,
            },
        };
        assert!(
            entry.profile < PROFILES.len(),
            "trace line {}: profile {} out of range (max {})",
            lineno + 1,
            entry.profile,
            PROFILES.len() - 1
        );
        trace.push(entry);
    }
    trace
}

struct RunReport {
    elapsed: Duration,
    latencies: Vec<Duration>,
    checksum: u64,
    samples: u64,
    per_worker: Vec<u64>,
    /// (dropped-or-missized, duplicated) counts from the response audit.
    dropped: usize,
    duplicated: usize,
}

/// Replays `trace` on a fresh pool and audits every response.
fn replay(
    trace: &[TraceLine],
    shared: &[Arc<CtSampler>],
    threads: usize,
    width: LaneWidth,
    seed: u64,
) -> RunReport {
    let mut builder = Pool::builder()
        .threads(threads)
        .width(width)
        .queue_capacity(1024)
        .seed_u64(seed);
    let profiles: Vec<_> = shared
        .iter()
        .map(|s| builder.shared_profile(Arc::clone(s)))
        .collect();
    let pool = builder.spawn();

    let start = Instant::now();
    let tickets: Vec<_> = trace
        .iter()
        .map(|line| {
            pool.submit(SampleRequest {
                profile: profiles[line.profile],
                count: line.count,
            })
            .expect("submit")
        })
        .collect();
    let mut latencies = Vec::with_capacity(trace.len());
    let mut seen = vec![false; trace.len()];
    let mut checksum = 0xcbf29ce484222325u64;
    let mut dropped = 0;
    let mut duplicated = 0;
    for (i, ticket) in tickets.into_iter().enumerate() {
        // An erroring ticket never marks its seq in `seen`, so the
        // unseen-seq sweep below counts it exactly once as dropped.
        if let Ok(response) = ticket.wait() {
            let seq = response.seq as usize;
            if seq >= seen.len() || seen[seq] {
                duplicated += 1;
            } else {
                seen[seq] = true;
            }
            if response.samples.len() != trace[i].count {
                dropped += 1;
            }
            for &s in &response.samples {
                checksum = (checksum ^ s as u32 as u64).wrapping_mul(0x100000001b3);
            }
            latencies.push(response.latency);
        }
    }
    let elapsed = start.elapsed();
    dropped += seen.iter().filter(|&&s| !s).count();
    let stats = pool.stats();
    RunReport {
        elapsed,
        latencies,
        checksum,
        samples: stats.samples(),
        per_worker: stats.samples_per_worker.clone(),
        dropped,
        duplicated,
    }
}

fn percentile(sorted: &[Duration], p: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx]
}

fn run(args: &[String]) -> ExitCode {
    let mut threads = 4usize;
    let mut width = LaneWidth::W4;
    let mut seed = 7u64;
    let mut sweep: Option<Vec<usize>> = None;
    let mut verify = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--threads" => threads = it.next().and_then(|v| v.parse().ok()).expect("--threads"),
            "--width" => {
                width = match it.next().map(String::as_str) {
                    Some("1") => LaneWidth::W1,
                    Some("2") => LaneWidth::W2,
                    Some("4") => LaneWidth::W4,
                    Some("8") => LaneWidth::W8,
                    _ => return usage(),
                }
            }
            "--seed" => seed = it.next().and_then(|v| v.parse().ok()).expect("--seed"),
            "--sweep" => {
                sweep = Some(
                    it.next()
                        .expect("--sweep")
                        .split(',')
                        .map(|t| t.parse().expect("--sweep"))
                        .collect(),
                );
            }
            "--verify" => verify = true,
            _ => return usage(),
        }
    }

    let stdin = std::io::stdin();
    let trace = parse_trace(stdin.lock());
    if trace.is_empty() {
        eprintln!("pool_server: empty trace on stdin");
        return ExitCode::from(2);
    }
    let total_requested: u64 = trace.iter().map(|l| l.count as u64).sum();
    let needed_profiles = trace.iter().map(|l| l.profile).max().expect("non-empty") + 1;
    eprintln!(
        "pool_server: {} requests, {} samples, {} profile(s); building shared kernels...",
        trace.len(),
        total_requested,
        needed_profiles
    );
    let shared: Vec<Arc<CtSampler>> = PROFILES[..needed_profiles]
        .iter()
        .map(|&(sigma, n)| {
            SamplerSpec::new(sigma, n)
                .build_shared()
                .expect("profile builds")
        })
        .collect();

    let thread_counts = sweep.unwrap_or_else(|| vec![threads]);
    let mut failed = false;
    for &t in &thread_counts {
        let report = replay(&trace, &shared, t, width, seed);
        let mut sorted = report.latencies.clone();
        sorted.sort();
        println!(
            "threads={t} width={width:?} requests={} samples={} elapsed={:.3}s \
             throughput={:.3e} samples/s p50={:?} p99={:?}",
            trace.len(),
            report.samples,
            report.elapsed.as_secs_f64(),
            report.samples as f64 / report.elapsed.as_secs_f64(),
            percentile(&sorted, 0.50),
            percentile(&sorted, 0.99),
        );
        println!("  per-worker samples: {:?}", report.per_worker);
        if verify {
            let replayed = replay(&trace, &shared, t, width, seed);
            let audit_ok = report.dropped == 0
                && report.duplicated == 0
                && replayed.dropped == 0
                && replayed.duplicated == 0;
            let deterministic = report.checksum == replayed.checksum
                && report.samples == total_requested
                && replayed.samples == total_requested;
            if audit_ok && deterministic {
                println!(
                    "  verify: ok ({} responses, none dropped/duplicated; \
                     replay checksum {:016x} matches)",
                    trace.len(),
                    report.checksum
                );
            } else {
                failed = true;
                eprintln!(
                    "  verify: FAILED (dropped={} duplicated={} samples={}/{} \
                     checksum {:016x} vs replay {:016x})",
                    report.dropped + replayed.dropped,
                    report.duplicated + replayed.duplicated,
                    report.samples,
                    total_requested,
                    report.checksum,
                    replayed.checksum,
                );
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
