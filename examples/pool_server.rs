//! `pool_server` — a stdin/stdout load generator for `ctgauss-pool`.
//!
//! Line protocol: one request per line, `<profile> <count>` (or just
//! `<count>` for profile 0); blank lines and `#` comments are skipped.
//! A line reading `stats` emits the live [`MetricsSnapshot`] (pool
//! telemetry plus the process-global kernel-cache and synthesis
//! sections) as one compact JSON line on stdout at that point of the
//! submission stream. Profiles index a fixed table: 0 = sigma 2,
//! 1 = sigma 6.15543, 2 = sigma 1.5 (all n = 24, the Figure 5
//! configurations).
//!
//! ```text
//! # Generate a 10k-request trace, then replay it on 4 workers:
//! pool_server gen 10000 --seed 1 > trace.txt
//! pool_server run --threads 4 --verify < trace.txt
//! # Thread-scaling sweep over the same trace:
//! pool_server run --sweep 1,2,4,8 < trace.txt
//! # Chaos mode: inject worker deaths and stalls, verify the run
//! # against the offline (seed, trace, failure-log) replay:
//! pool_server run --threads 4 --chaos --verify < trace.txt
//! pool_server run --chaos 'panic@w0.req40;stall@w1.req120:25ms' --verify < trace.txt
//! ```
//!
//! `run` reports p50/p99 request latency and samples/sec per thread
//! count; `--metrics-out FILE` additionally writes the final run's full
//! metrics snapshot as pretty JSON. `--verify` replays the trace twice
//! — the second time with telemetry globally disabled, so the checksum
//! match also proves recording never perturbs the draw-order contract —
//! and exits non-zero if any response is dropped, duplicated,
//! mis-sized, or fails to replay bit-identically; it also arms a
//! watchdog (`--deadline SECS`, default 300) that kills the process
//! with a non-zero exit if verification wedges instead of finishing — a
//! verifier that hangs is a failed verification, not a pending one.
//!
//! `--chaos` arms a fault plan (inline spec, else `CTGAUSS_FAULTS`,
//! else a built-in default) and switches submission to the bounded
//! retry path. Under chaos, two live runs legitimately differ (which
//! requests die with a worker is timing-dependent), so `--verify`
//! instead checks each live run against `replay_trace` over its own
//! failure log: every fulfilled response must match bit for bit, every
//! missing response must be one the log accounts for.

use std::io::Write;
use std::process::ExitCode;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

use ctgauss_core::CtSampler;
use ctgauss_pool::{
    replay_trace, submit_with_retry, FaultKind, FaultPlan, LaneWidth, MetricsSnapshot, Pool,
    PoolError, RetryPolicy, SampleRequest, TraceEntry, WaitError, FAULTS_ENV,
};
use ctgauss_prng::SeedTree;
// Trace generation/parsing, percentiles, the response checksum, and the
// watchdog are the shared harness in `ctgauss-rpc-client`: the same code
// drives this in-process front end, the TCP `rpc_server` example, and
// the `rpc_smoke` CI gate.
use ctgauss_rpc_client::harness::{
    arm_watchdog, build_standard_profiles, gen_trace, parse_trace, percentile, FnvChecksum,
    TraceLine, STANDARD_PROFILES,
};

fn usage() -> ExitCode {
    eprintln!(
        "usage: pool_server gen <n> [--seed S] [--profiles K] [--max-count C]\n\
                pool_server run [--threads T] [--width 1|2|4|8] [--seed S]\n\
                             [--sweep T1,T2,..] [--verify] [--deadline SECS]\n\
                             [--chaos [SPEC]] [--metrics-out FILE] < trace\n\
       chaos SPEC: `panic@w<W>.{{batch|req}}<N>`, `stall@w<W>.{{batch|req}}<N>:<D>ms`,\n\
                   `cacheload[:N]`, `;`-separated; defaults to ${FAULTS_ENV} or a built-in plan"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("gen") => generate(&args[1..]),
        Some("run") => run(&args[1..]),
        // Bare flags mean `run` (so `pool_server --threads 4 < trace` works).
        Some(flag) if flag.starts_with("--") => run(&args),
        None => run(&args),
        Some(_) => usage(),
    }
}

/// Emits a reproducible synthetic trace: mixed small/bulk requests with
/// a long-tail size distribution, like an LWE-ish workload would issue.
fn generate(args: &[String]) -> ExitCode {
    let mut n: Option<usize> = None;
    let mut seed = 1u64;
    let mut profiles = 1usize;
    let mut max_count = 4096usize;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--seed" => seed = it.next().and_then(|v| v.parse().ok()).expect("--seed"),
            "--profiles" => {
                profiles = it.next().and_then(|v| v.parse().ok()).expect("--profiles");
                assert!(
                    (1..=STANDARD_PROFILES.len()).contains(&profiles),
                    "--profiles must be 1..={}",
                    STANDARD_PROFILES.len()
                );
            }
            "--max-count" => {
                max_count = it.next().and_then(|v| v.parse().ok()).expect("--max-count");
            }
            v if n.is_none() && !v.starts_with("--") => n = v.parse().ok(),
            _ => return usage(),
        }
    }
    let Some(n) = n else { return usage() };
    assert!(max_count >= 1, "--max-count must be at least 1");
    let stdout = std::io::stdout();
    let mut out = std::io::BufWriter::new(stdout.lock());
    writeln!(out, "# pool_server trace: {n} requests, seed {seed}").expect("stdout");
    for line in gen_trace(seed, n, profiles, max_count) {
        writeln!(out, "{} {}", line.profile, line.count).expect("stdout");
    }
    ExitCode::SUCCESS
}

/// The `stats` line command (and `--metrics-out` body): the pool's live
/// telemetry plus the process-global kernel-cache and synthesis
/// sections, as one snapshot.
fn full_snapshot(pool: &Pool) -> MetricsSnapshot {
    let mut snapshot = pool.metrics();
    ctgauss_core::attach_metrics(&mut snapshot);
    snapshot
}

struct RunReport {
    elapsed: Duration,
    latencies: Vec<Duration>,
    checksum: u64,
    samples: u64,
    per_worker: Vec<u64>,
    /// (dropped-or-missized, duplicated) counts from the response audit.
    dropped: usize,
    duplicated: usize,
    /// Tickets that outlived the per-ticket deadline — hangs; always a
    /// verification failure.
    hung: usize,
    /// Requests the pool answered `WorkerGone` (chaos mode): abandoned
    /// by a death or routed to a retired shard. Accounted, not dropped.
    gone: usize,
    /// Chaos mode only: worker deaths, restarts, and whether the live
    /// run matched the offline (seed, trace, failure-log) replay.
    chaos: Option<ChaosReport>,
    /// The run's final metrics snapshot (pool + core sections), for
    /// `--metrics-out`.
    metrics: MetricsSnapshot,
}

struct ChaosReport {
    deaths: usize,
    restarts: u64,
    replay_mismatches: usize,
}

/// Replays `trace` on a fresh pool and audits every response. With a
/// fault plan armed, submission goes through the bounded retry path,
/// every ticket wait is deadlined, and the live responses are checked
/// bit for bit against the offline (seed, trace, failure-log) replay.
fn replay(
    trace: &[TraceLine],
    stats_at: &[usize],
    shared: &[Arc<CtSampler>],
    threads: usize,
    width: LaneWidth,
    seed: u64,
    faults: Option<&FaultPlan>,
) -> RunReport {
    let mut builder = Pool::builder()
        .threads(threads)
        .width(width)
        .queue_capacity(1024)
        .seed_u64(seed);
    if let Some(plan) = faults {
        builder = builder.faults(plan.clone());
    }
    let profiles: Vec<_> = shared
        .iter()
        .map(|s| builder.shared_profile(Arc::clone(s)))
        .collect();
    let pool = builder.spawn();
    let retry = RetryPolicy {
        attempts: 200,
        submit_timeout: Duration::from_millis(250),
        ..RetryPolicy::default()
    };

    let start = Instant::now();
    let mut stats_points = stats_at.iter().peekable();
    let mut tickets = Vec::with_capacity(trace.len());
    for (i, line) in trace.iter().enumerate() {
        // `stats` line commands fire at their position in the submission
        // stream, so queue depth and in-flight latency are live values.
        while stats_points.next_if(|&&at| at <= i).is_some() {
            println!("{}", full_snapshot(&pool).to_json_line());
        }
        let request = SampleRequest {
            profile: profiles[line.profile],
            count: line.count,
        };
        tickets.push(if faults.is_some() {
            // Bounded-latency path: a retryable refusal consumes no
            // sequence number, so the trace→seq alignment survives
            // however many attempts a request needs. WorkerGone *does*
            // consume one (the retired shard still owns that slot of
            // the sequence space) — record it and move on.
            submit_with_retry(&pool, request, &retry)
        } else {
            pool.submit(request)
        });
    }
    // `stats` lines after the last request snapshot post-submission.
    while stats_points.next().is_some() {
        println!("{}", full_snapshot(&pool).to_json_line());
    }
    let mut latencies = Vec::with_capacity(trace.len());
    let mut live: Vec<Option<Vec<i32>>> = Vec::with_capacity(trace.len());
    let mut seen = vec![false; trace.len()];
    let mut checksum = FnvChecksum::new();
    let mut dropped = 0;
    let mut duplicated = 0;
    let mut hung = 0;
    let mut gone = 0;
    for (i, ticket) in tickets.into_iter().enumerate() {
        // An erroring or hung ticket never marks its seq in `seen`; the
        // unseen-seq sweep below counts it once as dropped unless it is
        // `WorkerGone`, which the failure log accounts for.
        let outcome = match ticket {
            Ok(ticket) => match ticket.wait_timeout(TICKET_DEADLINE) {
                Ok(response) => Some(response),
                Err(WaitError::TimedOut(_)) => {
                    hung += 1;
                    None
                }
                Err(WaitError::Pool(PoolError::WorkerGone)) => {
                    gone += 1;
                    None
                }
                Err(WaitError::Pool(error)) => panic!("request {i}: unexpected {error}"),
            },
            Err(PoolError::WorkerGone) => {
                gone += 1;
                None
            }
            Err(error) => panic!("request {i}: submission failed: {error}"),
        };
        match outcome {
            Some(response) => {
                let seq = response.seq as usize;
                if seq >= seen.len() || seen[seq] {
                    duplicated += 1;
                } else {
                    seen[seq] = true;
                }
                if response.samples.len() != trace[i].count {
                    dropped += 1;
                }
                checksum.update(&response.samples);
                latencies.push(response.latency);
                live.push(Some(response.samples));
            }
            None => live.push(None),
        }
    }
    let elapsed = start.elapsed();
    // `WorkerGone` responses are accounted by the failure log, not lost:
    // only unseen seqs beyond those count as dropped.
    dropped += seen
        .iter()
        .filter(|&&s| !s)
        .count()
        .saturating_sub(gone + hung);
    let metrics = full_snapshot(&pool);
    let chaos = faults.map(|_| {
        pool.shutdown(); // the failure log is complete only after shutdown
        let failures = pool.failure_log();
        let entries: Vec<TraceEntry> = trace
            .iter()
            .map(|line| TraceEntry {
                profile_index: line.profile,
                count: line.count,
            })
            .collect();
        let offline = replay_trace(
            &SeedTree::from_u64_seed(seed),
            shared,
            threads,
            width,
            &entries,
            &failures,
        );
        let replay_mismatches = live
            .iter()
            .zip(&offline)
            .filter(|(got, want)| got != want)
            .count();
        ChaosReport {
            deaths: failures.len(),
            restarts: pool.health().restarts(),
            replay_mismatches,
        }
    });
    let samples = metrics.counter("pool", "samples_total").unwrap_or(0);
    let per_worker = (0..threads)
        .map(|w| {
            metrics
                .counter("pool_shards", &format!("shard{w}_samples"))
                .unwrap_or(0)
        })
        .collect();
    RunReport {
        elapsed,
        latencies,
        checksum: checksum.value(),
        samples,
        per_worker,
        dropped,
        duplicated,
        hung,
        gone,
        chaos,
        metrics,
    }
}

/// Per-ticket wait deadline: far beyond any honest service time, so a
/// trip is a hang, not load.
const TICKET_DEADLINE: Duration = Duration::from_secs(60);

/// The fault plan `--chaos` falls back to when neither an inline spec
/// nor `CTGAUSS_FAULTS` provides one: two worker deaths (one early, one
/// deep enough to land in a resurrected epoch on busy traces), a stall
/// long enough to trip deadlines, and one cache-load failure.
/// Out-of-range workers are dropped on arming, so this is safe at any
/// `--threads`.
const DEFAULT_CHAOS_SPEC: &str = "panic@w0.req40;stall@w1.req120:25ms;panic@w1.req260;cacheload:1";

fn run(args: &[String]) -> ExitCode {
    let mut threads = 4usize;
    let mut width = LaneWidth::W4;
    let mut seed = 7u64;
    let mut sweep: Option<Vec<usize>> = None;
    let mut verify = false;
    let mut chaos = false;
    let mut chaos_spec: Option<String> = None;
    let mut deadline = Duration::from_secs(300);
    let mut metrics_out: Option<String> = None;
    let mut it = args.iter().peekable();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--threads" => threads = it.next().and_then(|v| v.parse().ok()).expect("--threads"),
            "--width" => {
                width = match it.next().map(String::as_str) {
                    Some("1") => LaneWidth::W1,
                    Some("2") => LaneWidth::W2,
                    Some("4") => LaneWidth::W4,
                    Some("8") => LaneWidth::W8,
                    _ => return usage(),
                }
            }
            "--seed" => seed = it.next().and_then(|v| v.parse().ok()).expect("--seed"),
            "--sweep" => {
                sweep = Some(
                    it.next()
                        .expect("--sweep")
                        .split(',')
                        .map(|t| t.parse().expect("--sweep"))
                        .collect(),
                );
            }
            "--verify" => verify = true,
            "--chaos" => {
                chaos = true;
                // Optional inline spec: the next arg unless it is a flag.
                if let Some(next) = it.peek() {
                    if !next.starts_with("--") {
                        chaos_spec = it.next().cloned();
                    }
                }
            }
            "--deadline" => {
                deadline = Duration::from_secs(
                    it.next().and_then(|v| v.parse().ok()).expect("--deadline"),
                );
            }
            "--metrics-out" => metrics_out = Some(it.next().expect("--metrics-out").clone()),
            _ => return usage(),
        }
    }

    // Resolve the fault plan: inline spec, else `CTGAUSS_FAULTS`, else the
    // built-in default.
    let faults: Option<FaultPlan> = if chaos {
        let plan = match &chaos_spec {
            Some(spec) => match FaultPlan::parse(spec) {
                Ok(plan) => plan,
                Err(error) => {
                    eprintln!("pool_server: --chaos spec: {error}");
                    return ExitCode::from(2);
                }
            },
            None => match FaultPlan::from_env() {
                Ok(Some(plan)) => plan,
                Ok(None) => {
                    FaultPlan::parse(DEFAULT_CHAOS_SPEC).expect("built-in chaos spec parses")
                }
                Err(error) => {
                    eprintln!("pool_server: {FAULTS_ENV}: {error}");
                    return ExitCode::from(2);
                }
            },
        };
        Some(plan)
    } else {
        None
    };

    let stdin = std::io::stdin();
    let parsed = parse_trace(stdin.lock(), STANDARD_PROFILES.len());
    let trace = parsed.requests;
    if trace.is_empty() {
        eprintln!("pool_server: empty trace on stdin");
        return ExitCode::from(2);
    }
    let total_requested: u64 = trace.iter().map(|l| l.count as u64).sum();
    let needed_profiles = trace.iter().map(|l| l.profile).max().expect("non-empty") + 1;
    eprintln!(
        "pool_server: {} requests, {} samples, {} profile(s); building shared kernels...",
        trace.len(),
        total_requested,
        needed_profiles
    );
    // Cache-load faults must be armed on this thread *before* the kernels
    // are built: a tripped load falls back to direct synthesis, which is
    // exactly the recovery path chaos mode exists to exercise.
    if let Some(plan) = &faults {
        plan.arm_cache_load_failures();
        eprintln!(
            "pool_server: chaos armed ({} worker fault(s), {} cache-load failure(s))",
            plan.worker_faults().len(),
            plan.cache_load_failures()
        );
    }
    let shared: Vec<Arc<CtSampler>> = build_standard_profiles(needed_profiles);

    let watchdog = verify.then(|| arm_watchdog("pool_server", deadline));
    let thread_counts = sweep.unwrap_or_else(|| vec![threads]);
    let mut failed = false;
    let mut last_metrics: Option<MetricsSnapshot> = None;
    for &t in &thread_counts {
        let report = replay(
            &trace,
            &parsed.stats_at,
            &shared,
            t,
            width,
            seed,
            faults.as_ref(),
        );
        let mut sorted = report.latencies.clone();
        sorted.sort();
        println!(
            "threads={t} width={width:?} requests={} samples={} elapsed={:.3}s \
             throughput={:.3e} samples/s p50={:?} p99={:?}",
            trace.len(),
            report.samples,
            report.elapsed.as_secs_f64(),
            report.samples as f64 / report.elapsed.as_secs_f64(),
            percentile(&sorted, 0.50),
            percentile(&sorted, 0.99),
        );
        println!("  per-worker samples: {:?}", report.per_worker);
        if let Some(chaos) = &report.chaos {
            println!(
                "  chaos: deaths={} restarts={} gone={} hung={}",
                chaos.deaths, chaos.restarts, report.gone, report.hung
            );
            if verify {
                // Under chaos two live runs legitimately differ, so the
                // check is live-vs-own-replay, never cross-run checksums.
                // A plan whose panics all target out-of-range workers
                // cannot kill anyone, so only demand a death when one is
                // actually reachable.
                let expect_death = faults.as_ref().is_some_and(|plan| {
                    plan.worker_faults()
                        .iter()
                        .any(|f| f.worker < t && matches!(f.kind, FaultKind::Panic))
                });
                let ok = report.hung == 0
                    && report.duplicated == 0
                    && report.dropped == 0
                    && chaos.replay_mismatches == 0
                    && (!expect_death || chaos.deaths >= 1);
                if ok {
                    println!(
                        "  verify: ok ({} responses, {} gone — all accounted by the \
                         failure log; live run replays bit-exactly)",
                        trace.len(),
                        report.gone
                    );
                } else {
                    failed = true;
                    eprintln!(
                        "  verify: FAILED (hung={} dropped={} duplicated={} \
                         replay_mismatches={} deaths={} expect_death={})",
                        report.hung,
                        report.dropped,
                        report.duplicated,
                        chaos.replay_mismatches,
                        chaos.deaths,
                        expect_death,
                    );
                }
            }
        } else if verify {
            // The replay leg runs with telemetry globally disabled: a
            // matching checksum therefore also proves the record path
            // never perturbs the draw-order contract.
            ctgauss_telemetry::set_enabled(false);
            let replayed = replay(&trace, &[], &shared, t, width, seed, None);
            ctgauss_telemetry::set_enabled(true);
            let audit_ok = report.dropped == 0
                && report.duplicated == 0
                && replayed.dropped == 0
                && replayed.duplicated == 0;
            let deterministic = report.checksum == replayed.checksum
                && report.samples == total_requested
                && replayed.samples == total_requested;
            if audit_ok && deterministic {
                println!(
                    "  verify: ok ({} responses, none dropped/duplicated; \
                     metrics-disabled replay checksum {:016x} matches)",
                    trace.len(),
                    report.checksum
                );
            } else {
                failed = true;
                eprintln!(
                    "  verify: FAILED (dropped={} duplicated={} samples={}/{} \
                     checksum {:016x} vs replay {:016x})",
                    report.dropped + replayed.dropped,
                    report.duplicated + replayed.duplicated,
                    report.samples,
                    total_requested,
                    report.checksum,
                    replayed.checksum,
                );
            }
        }
        last_metrics = Some(report.metrics);
    }
    if let Some(path) = &metrics_out {
        let snapshot = last_metrics.expect("at least one run");
        std::fs::write(path, snapshot.to_json().to_string_pretty()).expect("--metrics-out write");
        eprintln!("pool_server: metrics written to {path}");
    }
    if let Some(done) = watchdog {
        done.store(true, Ordering::Relaxed);
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
