//! Quickstart: build a constant-time discrete Gaussian sampler and draw
//! samples.
//!
//! ```sh
//! cargo run --release --bin quickstart
//! ```

use ctgauss_core::{SamplerBuilder, Strategy};
use ctgauss_prng::ChaChaRng;

fn main() {
    // The paper's Falcon configuration: sigma = 2, 128-bit probabilities,
    // tail cut 13. The builder runs the whole Figure 4 pipeline: Knuth-Yao
    // matrix -> list L -> sublist split -> exact Boolean minimization ->
    // constant-time recombination -> bitsliced program.
    let sampler = SamplerBuilder::new("2", 128)
        .tail_cut(13)
        .strategy(Strategy::SplitExact)
        .build()
        .expect("parameters are valid");

    let report = sampler.report();
    println!("built sampler: sigma = 2, n = 128");
    println!("  DDG leaves        : {}", report.leaves);
    println!("  Delta (free bits) : {}", report.delta);
    println!("  sublists          : {}", report.sublists.len());
    println!("  compiled gates    : {}", report.gates);
    println!("  bits per sample   : {}", sampler.bits_per_sample());

    // The static constant-time audit: straight-line, input-taint only.
    let audit = sampler.audit();
    println!("  constant-time     : {}", audit.is_constant_time());

    // Draw one 64-sample batch (constant time, 129 random words).
    let mut rng = ChaChaRng::from_u64_seed(42);
    let batch = sampler.sample_batch(&mut rng);
    println!("\nfirst batch: {:?}", &batch[..16]);

    // Or stream single samples.
    let mut stream = sampler.stream();
    let singles: Vec<i32> = (0..8).map(|_| stream.next(&mut rng)).collect();
    println!("streamed   : {singles:?}");

    // Empirical moments over a million samples.
    let mut sum = 0f64;
    let mut sq = 0f64;
    let batches = 16_000;
    for _ in 0..batches {
        for s in sampler.sample_batch(&mut rng) {
            sum += f64::from(s);
            sq += f64::from(s) * f64::from(s);
        }
    }
    let n = f64::from(batches) * 64.0;
    let mean = sum / n;
    println!(
        "\nover {} samples: mean = {mean:+.4}, variance = {:.4} (sigma^2 = 4)",
        batches * 64,
        sq / n - mean * mean
    );
}
