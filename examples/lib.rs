//! See the `[[bin]]` targets; this lib exists only to anchor the package.
